"""One shard of a sharded scenario: sub-topology, protocols, collectors.

A :class:`ShardHost` owns the nodes its shard was assigned plus *ghost*
copies of the far endpoints of cut links.  Ghosts carry no protocol — they
exist so the owned side of each cut link has a real :class:`~repro.net.link.
Link` to serialize onto; the outbound direction is replaced by a
:class:`~repro.dist.proxy.BoundaryChannel` that relays instead of
delivering, and reliable-channel messages are captured by the link's
``message_tap``.  Everything else — protocol construction order, warm
start, collector wiring — replicates ``run_scenario`` exactly, which is
what makes the sharded run byte-identical (see docs/distributed.md).
"""

from __future__ import annotations

import itertools
import os
import pickle
import time as _wallclock
from dataclasses import dataclass, field, replace
from typing import Optional

from ..experiments.config import ExperimentConfig
from ..experiments.scenario import make_protocol_factory
from ..metrics.counters import DropCounter, MessageCounter
from ..net.channels import ReliableChannel
from ..net.dynamics import LinkEvent, LinkScheduler, ScriptedDriver
from ..net.network import Network
from ..sim.engine import EventHandle, Simulator
from ..sim.rng import RngStreams
from ..sim.tracing import DropCause, TraceBus
from ..sim.units import BITS_PER_BYTE
from ..topology.graph import Topology
from ..traffic.cbr import CbrSource
from ..traffic.flows import FlowSpec
from ..traffic.sink import PacketSink
from .proxy import (
    BoundaryChannel,
    MessageRelay,
    PacketRelay,
    Relay,
    ShardHeartbeat,
    make_message_tap,
)

__all__ = ["ShardPlan", "ShardOutput", "ShardHost"]

#: Fault-injection hooks (tests only): "<shard_index>:<window_time>" — the
#: named shard hangs / dies the first time it is asked to run a window
#: reaching that virtual time.  Same idiom as REPRO_TEST_HANG_SEEDS in the
#: sweep runner.
HANG_ENV = "REPRO_TEST_SHARD_HANG"
DIE_ENV = "REPRO_TEST_SHARD_DIE"


@dataclass(frozen=True)
class ShardPlan:
    """Everything one worker needs to build its shard (picklable)."""

    shard_index: int
    n_shards: int
    protocol: str
    seed: int
    config: ExperimentConfig
    #: The FULL topology: warm starts need global shortest paths.
    topology: Topology
    #: node -> shard for every node (relay routing + ownership test).
    assignment: dict[int, int]
    cut_links: tuple[tuple[int, int], ...]
    sender: int
    receiver: int
    #: Full event schedule; each worker keeps the events whose link exists
    #: in its sub-topology (cut-link events execute in both shards).
    events: tuple[LinkEvent, ...]
    traffic_start: float
    #: Post-failure counting window start (== fail time of the scenario).
    window_start: float
    end_at: float
    #: Restrict warm start to these destinations (BGP, 10k-node runs);
    #: None = full warm start, byte-identical to single-process.
    warm_dests: Optional[tuple[int, ...]] = None
    collect_traces: bool = False


@dataclass
class ShardOutput:
    """Everything a shard measured, shipped to the coordinator at the end."""

    shard_index: int
    sent: int = 0
    delivered: int = 0
    deliveries: list = field(default_factory=list)
    #: Post-failure-window drops by cause (mirrors DropCounter.by_cause).
    drops_window: dict[DropCause, int] = field(default_factory=dict)
    #: Whole-run per-cause drops over owned nodes (conservation check).
    drops_total: dict[DropCause, int] = field(default_factory=dict)
    messages: int = 0
    withdrawals: int = 0
    overhead_messages: int = 0
    overhead_bytes: int = 0
    #: RouteChangeRecords in publish order (the shard-local total order).
    route_records: list = field(default_factory=list)
    #: Owned node -> next hop toward the receiver, post warm start.
    initial_next_hops: dict[int, Optional[int]] = field(default_factory=dict)
    #: Owned node -> full FIB copy, post warm start (fib-loop replay).
    initial_fibs: dict[int, dict[int, Optional[int]]] = field(default_factory=dict)
    #: Data packets physically inside this shard's links at end of run.
    end_occupancy_data: int = 0
    #: Data packets parked in owned protocols' discovery buffers.
    pending_data: int = 0
    trace_packets: list = field(default_factory=list)
    trace_links: list = field(default_factory=list)
    trace_messages: list = field(default_factory=list)


class ShardHost:
    """Builds and drives one shard's simulator."""

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan
        config = plan.config
        topo = plan.topology
        owned_set = {
            node for node, shard in plan.assignment.items()
            if shard == plan.shard_index
        }
        self.owned = sorted(owned_set)

        # --- sub-topology: owned nodes + ghost far-endpoints of cut links ---
        sub = Topology(name=f"{topo.name}-shard{plan.shard_index}")
        members: set[int] = set(owned_set)
        kept = []
        for key, spec in sorted(topo.links.items()):
            if key[0] in owned_set or key[1] in owned_set:
                members.update(key)
                kept.append(spec)
        for node in sorted(members):
            sub.add_node(node, topo.positions.get(node))
        for spec in kept:
            sub.add_link(spec)
        self.ghosts = sorted(members - owned_set)
        self.sub = sub

        # --- live network (same construction order as run_scenario) --------
        self.sim = Simulator(queue=config.event_queue)
        self.bus = TraceBus(keep_routes=False, keep_links=False)
        self.network = Network(
            self.sim,
            sub,
            self.bus,
            queue_capacity=config.queue_capacity,
            record_paths=config.record_paths,
            record_forwards=plan.collect_traces,
            priority_control=config.prioritize_control,
        )

        # --- boundary stubs on cut links ------------------------------------
        self.outbox: list[Relay] = []
        self._capture_seq = itertools.count()
        fail_times: dict[tuple[int, int], list[float]] = {}
        for event in plan.events:
            if event.kind == "fail":
                fail_times.setdefault(event.link_key, []).append(event.time)
        for key in plan.cut_links:
            if not sub.has_link(*key):
                continue  # cut between two other shards
            a, b = key
            src, dst = (a, b) if a in owned_set else (b, a)
            link = self.network.link(a, b)
            outages = tuple(sorted(fail_times.get(key, ())))
            link._channels[src] = BoundaryChannel(
                self.sim, link, src, dst, self.outbox, outages, self._capture_seq
            )
            # Node.add_link cached the old channel's bound send; re-point it.
            self.network.nodes[src]._tx[dst] = link.sender_from(src)
            link.message_tap = make_message_tap(
                self.sim, key, dst, self.outbox, outages, self._capture_seq
            )

        # --- delivery sequencer at cut-adjacent nodes -----------------------
        # Same-instant arrivals at a node race between injected relays and
        # internal traffic; the single-process engine orders them by
        # ascending (transmission start, sender).  Gates on every channel
        # into a cut-adjacent node intercept arrivals so the slot can be
        # replayed in that canonical order (see docs/distributed.md).
        self._relay_slots: dict[
            tuple[float, int], list[tuple[Relay, EventHandle]]
        ] = {}
        gated: set[int] = set()
        for key in plan.cut_links:
            if sub.has_link(*key):
                a, b = key
                gated.add(a if a in owned_set else b)
        self._gated = gated
        for node_id in sorted(gated):
            for nbr in sorted(sub.neighbors(node_id)):
                link = self.network.link(nbr, node_id)
                link._channels[nbr].arrival_gate = self._packet_gate
                # Set at link level (not per session): reliable sessions may
                # be opened at any point and inherit the gate at creation.
                link.reliable_gate = self._message_gate

        # --- protocols on owned nodes only (ghosts stay protocol-less) -----
        rng_streams = RngStreams(plan.seed)
        factory = make_protocol_factory(
            plan.protocol, self.network, rng_streams, topo, config
        )
        for node_id in self.owned:
            factory(self.network.node(node_id))  # base ctor self-attaches
        for node_id in self.owned:
            protocol = self.network.node(node_id).protocol
            assert protocol is not None
            if plan.warm_dests is not None:
                protocol.warm_start(topo, dests=plan.warm_dests)
            else:
                protocol.warm_start(topo)

        # --- collectors (after warm start, exactly like run_scenario) ------
        out = ShardOutput(shard_index=plan.shard_index)
        self.output = out
        for node_id in self.owned:
            node = self.network.node(node_id)
            out.initial_next_hops[node_id] = node.next_hop(plan.receiver)
            out.initial_fibs[node_id] = dict(node.fib)
        self.bus.subscribe("route", out.route_records.append)
        self.drop_counter = DropCounter(self.bus, window_start=plan.window_start)
        self.message_counter = MessageCounter(self.bus, window_start=plan.window_start)
        self.overhead_counter = MessageCounter(self.bus)
        if plan.collect_traces:
            self.bus.subscribe("packet", out.trace_packets.append)
            self.bus.subscribe("link", out.trace_links.append)
            self.bus.subscribe("message", out.trace_messages.append)

        # --- traffic --------------------------------------------------------
        self.sink: Optional[PacketSink] = None
        if plan.receiver in owned_set:
            self.sink = PacketSink(flow_id=1, ttl_at_send=config.ttl)
            self.network.node(plan.receiver).attach_app(self.sink)
        self.source: Optional[CbrSource] = None
        if plan.sender in owned_set:
            flow = FlowSpec(
                flow_id=1,
                src=plan.sender,
                dst=plan.receiver,
                rate_pps=config.rate_pps,
                start=plan.traffic_start,
                stop=plan.end_at,
                packet_bytes=config.packet_bytes,
                ttl=config.ttl,
            )
            self.source = CbrSource(self.sim, self.network, flow)
            self.source.start()

        # --- topology events ------------------------------------------------
        scheduler = LinkScheduler(
            self.sim, self.network, detection_delay=config.detection_delay
        )
        local_events = tuple(
            replace(event)  # private copies: LinkEvent is mutable
            for event in plan.events
            if sub.has_link(event.a, event.b)
        )
        scheduler.run_driver(ScriptedDriver(local_events), until=plan.end_at)

        # --- progress accounting (heartbeats) -------------------------------
        # Cumulative counters harvested into a ShardHeartbeat on every
        # window; pure bookkeeping outside the engine, so an instrumented
        # run stays byte-identical (the transparency tests pin this).
        self._relays_out = 0
        self._relays_in = 0
        self._busy_s = 0.0
        self._created_wall = _wallclock.perf_counter()

    # ----------------------------------------------------------- window API

    def peek_time(self) -> Optional[float]:
        return self.sim.peek_time()

    def run_until(self, barrier: float) -> tuple[list[Relay], ShardHeartbeat]:
        """Run all events at or before ``barrier``; drain relays + heartbeat."""
        t0 = _wallclock.perf_counter()
        self.sim.run(until=barrier)
        self._busy_s += _wallclock.perf_counter() - t0
        out = list(self.outbox)
        self.outbox.clear()
        self._relays_out += len(out)
        heartbeat = ShardHeartbeat(
            shard=self.plan.shard_index,
            barrier=barrier,
            clock=self.sim.now,
            events=self.sim.events_processed,
            relays_out=self._relays_out,
            relays_in=self._relays_in,
            busy_s=self._busy_s,
            wall_s=_wallclock.perf_counter() - self._created_wall,
        )
        return out, heartbeat

    def inject(self, relays: list[Relay]) -> None:
        """Register relayed cross-shard arrivals (already coordinator-sorted).

        Each relay is scheduled through the sequencer and indexed by its
        ``(arrive_at, dst)`` slot, so whichever delivery fires first at that
        instant — the relay's own event or an internal arrival's gate —
        replays the whole slot in canonical order.
        """
        self._relays_in += len(relays)
        for relay in relays:
            handle = self.sim.schedule_call_at(
                relay.arrive_at, self._deliver_relay, relay
            )
            slot = self._relay_slots.setdefault(
                (relay.arrive_at, relay.dst), []
            )
            slot.append((relay, handle))

    # ----------------------------------------------------- delivery sequencer

    def _packet_gate(self, channel, packet) -> None:
        key = (self.sim.now, channel.dst)
        if key in self._relay_slots:
            self._drain_slot(key, ("packet", channel, packet))
        else:
            channel.deliver_now(packet)

    def _message_gate(self, channel, entry) -> None:
        if channel.dst not in self._gated:  # session toward a ghost
            channel.deliver_now(entry.payload)
            return
        key = (self.sim.now, channel.dst)
        if key in self._relay_slots:
            self._drain_slot(key, ("message", channel, entry))
        else:
            channel.deliver_now(entry.payload)

    def _deliver_relay(self, relay: Relay) -> None:
        self._drain_slot((relay.arrive_at, relay.dst), None)

    def _drain_slot(self, key: tuple[float, int], trigger) -> None:
        """Deliver every arrival bound for ``(t, node)`` in canonical order.

        Canonical order is ascending ``(transmission start, sender)`` — the
        order the single-process engine produces for same-instant arrivals.
        Pending competitors (relays, propagating packets, reliable-channel
        messages) are cancelled and delivered inline.  Transmission starts
        are compared at nanosecond resolution: the same physical instant
        reached along different float paths must still tie, while genuinely
        distinct starts differ by at least a serialization time (>> 1 ns).
        """
        t, node_id = key
        node = self.network.node(node_id)
        entries: list[tuple[int, int, int, str, object, object]] = []

        def add(tx_start, sender, kind, channel, payload) -> None:
            entries.append(
                (round(tx_start * 1e9), sender, len(entries), kind, channel, payload)
            )

        if trigger is not None:
            kind, channel, obj = trigger
            if kind == "packet":
                tx = (obj.size_bytes * BITS_PER_BYTE) / channel._bandwidth
                add(t - channel._prop_delay - tx, channel.src, kind, channel, obj)
            else:
                add(obj.tx_start, channel.src, kind, channel, obj.payload)
        for relay, handle in self._relay_slots.pop(key, ()):
            if handle.pending:
                handle.cancel()
            add(relay.tx_start, relay.src, "relay", None, relay)
        for nbr in sorted(self.sub.neighbors(node_id)):
            link = self.network.link(nbr, node_id)
            channel = link._channels[nbr]
            for handle, packet in list(channel._in_flight.values()):
                if handle.pending and handle.time == t:
                    handle.cancel()
                    del channel._in_flight[id(packet)]
                    tx = (packet.size_bytes * BITS_PER_BYTE) / channel._bandwidth
                    add(
                        t - channel._prop_delay - tx,
                        channel.src,
                        "packet",
                        channel,
                        packet,
                    )
            for listener in link.fail_listeners:
                owner = getattr(listener, "__self__", None)
                if not isinstance(owner, ReliableChannel) or owner.dst != node_id:
                    continue
                for entry in owner._in_flight:
                    if entry.handle.pending and entry.handle.time == t:
                        entry.handle.cancel()
                        add(
                            entry.tx_start,
                            owner.src,
                            "message",
                            owner,
                            entry.payload,
                        )

        entries.sort(key=lambda e: e[:3])
        for _, _, _, kind, channel, payload in entries:
            if kind == "relay":
                relay = payload
                obj = pickle.loads(relay.blob)
                if isinstance(relay, MessageRelay):
                    protocol = node.protocol
                    assert protocol is not None, "message relayed to a ghost"
                    # Mirror of BGP's _deliver_to: reliable channels hand
                    # the payload straight to the peer with attribution.
                    protocol.apply_message(obj, relay.src)
                else:
                    # Mirror of _Channel._arrive -> link._deliver -> receive.
                    node.receive(obj, relay.src)
            else:
                channel.deliver_now(payload)

    def finalize(self) -> ShardOutput:
        out = self.output
        self.drop_counter.close()
        self.message_counter.close()
        self.overhead_counter.close()
        if self.source is not None:
            out.sent = self.source.sent
        if self.sink is not None:
            out.delivered = self.sink.stats.delivered
            out.deliveries = list(self.sink.stats.deliveries)
        out.drops_window = dict(self.drop_counter.by_cause)
        out.messages = self.message_counter.messages
        out.withdrawals = self.message_counter.withdrawals
        out.overhead_messages = self.overhead_counter.messages
        out.overhead_bytes = self.overhead_counter.bytes_sent
        totals: dict[DropCause, int] = {cause: 0 for cause in DropCause}
        for node_id in self.owned:
            for cause, count in self.network.node(node_id).drops.items():
                totals[cause] += count
        out.drops_total = totals
        out.end_occupancy_data = sum(
            link.occupancy(data_only=True) for link in self.network.iter_links()
        )
        out.pending_data = sum(
            self.network.node(node_id).protocol.pending_data_packets()
            for node_id in self.owned
        )
        return out


def maybe_fault(shard_index: int, barrier: float) -> None:
    """Honor the REPRO_TEST_SHARD_* fault hooks (process workers only)."""
    for env, action in ((HANG_ENV, "hang"), (DIE_ENV, "die")):
        raw = os.environ.get(env)
        if not raw:
            continue
        target, _, threshold = raw.partition(":")
        if int(target) == shard_index and barrier >= float(threshold):
            if action == "hang":
                _wallclock.sleep(3600.0)
            else:
                os._exit(43)
