"""Online invariant monitors, differential convergence oracle, and fuzzer.

Three layers of simulator validation, all seed-deterministic:

* :mod:`repro.validation.monitors` — invariant monitors that subscribe to
  the trace bus during a run (packet conservation, TTL monotonicity, queue
  bounds, forwarding-loop freedom, post-convergence reachability) plus an
  end-of-run RIB diff against an offline SPF oracle;
* :mod:`repro.validation.oracle` — a differential oracle running the same
  scenario under several protocols and cross-checking converged path costs
  and per-protocol behavioral envelopes;
* :mod:`repro.validation.fuzz` — a deterministic scenario fuzzer with
  greedy failure shrinking.

Entry points: ``ExperimentConfig(validate=True)`` attaches the monitors to
every run, and ``python -m repro validate`` drives the fuzzer + oracle.
See ``docs/validation.md`` for the catalog and semantics.
"""

from .monitors import (
    ConvergenceSentinel,
    FibLoopMonitor,
    InvariantViolationError,
    Monitor,
    MonitorSuite,
    NoRouteAfterConvergenceMonitor,
    PacketConservationMonitor,
    QueueOccupancyMonitor,
    RibConsistencyMonitor,
    RunContext,
    TtlMonitor,
    Violation,
    settle_margin_for,
)
from .oracle import DifferentialReport, ProtocolOutcome, run_differential
from .fuzz import FuzzCase, FuzzOutcome, FuzzReport, fuzz, generate_case, run_case, shrink

__all__ = [
    "ConvergenceSentinel",
    "DifferentialReport",
    "FibLoopMonitor",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "InvariantViolationError",
    "Monitor",
    "MonitorSuite",
    "NoRouteAfterConvergenceMonitor",
    "PacketConservationMonitor",
    "ProtocolOutcome",
    "QueueOccupancyMonitor",
    "RibConsistencyMonitor",
    "RunContext",
    "TtlMonitor",
    "Violation",
    "fuzz",
    "generate_case",
    "run_case",
    "run_differential",
    "settle_margin_for",
    "shrink",
]
