"""Differential convergence oracle.

On a stable (quiesced) post-failure topology, every convergent protocol in
this package must agree on path *costs*: RIP and DBF carry hop-metric
distance vectors, the BGP variants carry AS-path lengths, and SPF carries
Dijkstra costs — on the unit-cost meshes of the paper these are the same
number, and all of them must equal an offline SPF oracle.  The oracle runs
the *same* scenario (same topology, same endpoints, same failed link —
scenario randomness depends only on the seed, not the protocol) under each
protocol, snapshots every node's routing state, and asserts:

* **cost equality** — each node's ``route_metric(dest)`` equals the SPF
  oracle cost on the post-failure graph, for every protocol that quiesced
  within the observation window (still-churning runs are reported as
  skipped, not failed);
* **per-protocol envelopes** — behavioral bounds from the paper: RIP never
  forms a forwarding loop (zero ``TTL_EXPIRED`` drops, Observation 2);
  every protocol delivers something; drops never exceed the packets sent;
* **monitor cleanliness** — the full online-monitor catalog ran during each
  scenario and recorded nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..experiments.config import ExperimentConfig
from .monitors import REACTIVE_PROTOCOLS, MonitorSuite, RibConsistencyMonitor

__all__ = [
    "ProtocolOutcome",
    "DifferentialReport",
    "run_differential",
    "run_churn_differential",
]

#: Default protocol triple: the paper's cache-less / cached distance-vector
#: pair plus a path-vector variant.
DEFAULT_PROTOCOLS = ("dbf", "rip", "bgp3")


@dataclass
class ProtocolOutcome:
    """One protocol's end state in a differential run."""

    protocol: str
    sent: int
    delivered: int
    drops_ttl: int
    total_drops: int
    converged_to_expected: bool
    quiesced: bool
    #: node -> dest -> metric (None = unreachable), captured post-run.
    metrics: dict[int, dict[int, Optional[int]]] = field(default_factory=dict)
    monitor_violations: tuple[str, ...] = ()


@dataclass
class DifferentialReport:
    """Outcome of one differential oracle invocation."""

    degree: int
    seed: int
    protocols: tuple[str, ...]
    outcomes: dict[str, ProtocolOutcome] = field(default_factory=dict)
    cost_mismatches: list[str] = field(default_factory=list)
    envelope_violations: list[str] = field(default_factory=list)
    monitor_violations: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.cost_mismatches
            or self.envelope_violations
            or self.monitor_violations
        )

    def all_violations(self) -> list[str]:
        return self.cost_mismatches + self.envelope_violations + self.monitor_violations

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        extra = f", {len(self.skipped)} skipped" if self.skipped else ""
        return (
            f"[{status}] degree={self.degree} seed={self.seed} "
            f"protocols={','.join(self.protocols)}: "
            f"{len(self.all_violations())} violation(s){extra}"
        )


def _snapshot_metrics(network) -> dict[int, dict[int, Optional[int]]]:
    """Every node's route metric to every other node, post-run."""
    nodes = sorted(n.id for n in network.iter_nodes())
    out: dict[int, dict[int, Optional[int]]] = {}
    for node in network.iter_nodes():
        if node.protocol is None:
            continue
        out[node.id] = {
            dest: node.protocol.route_metric(dest)
            for dest in nodes
            if dest != node.id
        }
    return out


def _oracle_costs(suite: MonitorSuite) -> dict[int, dict[int, Optional[int]]]:
    """SPF costs on the post-failure graph, shaped like a metric snapshot."""
    from ..topology.graph import shortest_path_tree
    from .monitors import _path_cost, _post_failure_graph

    ctx = suite.context
    assert ctx is not None
    graph = _post_failure_graph(ctx)
    nodes = sorted(ctx.topology.nodes)
    out: dict[int, dict[int, Optional[int]]] = {}
    for src in nodes:
        tree = shortest_path_tree(graph, src)
        costs = {dest: _path_cost(graph, path) for dest, path in tree.items()}
        row: dict[int, Optional[int]] = {}
        for dest in nodes:
            if dest == src:
                continue
            cost = costs.get(dest)
            if cost is not None and ctx.infinity is not None and cost >= ctx.infinity:
                cost = None
            row[dest] = cost
        out[src] = row
    return out


def run_differential(
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    protocols: tuple[str, ...] = DEFAULT_PROTOCOLS,
) -> DifferentialReport:
    """Run one scenario under each protocol and cross-check convergence."""
    from ..experiments.scenario import run_scenario

    config = (config or ExperimentConfig.quick()).with_(validate=False)
    report = DifferentialReport(degree=degree, seed=seed, protocols=tuple(protocols))
    oracle: Optional[dict[int, dict[int, Optional[int]]]] = None

    for protocol in protocols:
        suite = MonitorSuite()
        result = run_scenario(protocol, degree, seed, config, monitors=suite)
        rib = next(
            m for m in suite.monitors if isinstance(m, RibConsistencyMonitor)
        )
        quiesced = rib.skipped is None
        assert suite.context is not None
        outcome = ProtocolOutcome(
            protocol=protocol,
            sent=result.sent,
            delivered=result.delivered,
            drops_ttl=result.drops_ttl,
            total_drops=result.total_drops,
            converged_to_expected=result.converged_to_expected,
            quiesced=quiesced,
            metrics=_snapshot_metrics(suite.context.network),
            monitor_violations=tuple(str(v) for v in suite.violations),
        )
        report.outcomes[protocol] = outcome

        for v in outcome.monitor_violations:
            report.monitor_violations.append(f"{protocol}: {v}")

        # Envelopes.
        if protocol.startswith("rip") and result.drops_ttl > 0:
            report.envelope_violations.append(
                f"{protocol}: {result.drops_ttl} TTL_EXPIRED drops — RIP must "
                f"never form a forwarding loop (Observation 2)"
            )
        if result.delivered <= 0:
            report.envelope_violations.append(f"{protocol}: delivered nothing")
        if result.delivered + result.total_drops > result.sent:
            report.envelope_violations.append(
                f"{protocol}: delivered {result.delivered} + dropped "
                f"{result.total_drops} > sent {result.sent}"
            )

        # Cost equality against the SPF oracle (identical across protocols —
        # the scenario's topology and failure depend only on the seed).
        if not quiesced:
            report.skipped.append(
                f"{protocol}: not quiesced ({rib.skipped}) — cost equality not judged"
            )
            continue
        if oracle is None:
            oracle = _oracle_costs(suite)
        reactive = protocol in REACTIVE_PROTOCOLS
        active = suite.context.active_dests
        for node_id, row in sorted(outcome.metrics.items()):
            expected_row = oracle.get(node_id, {})
            for dest, actual in sorted(row.items()):
                if reactive:
                    # On-demand convergence: only destinations with traffic
                    # are owed routes, and only nodes that hold one (the
                    # discovery flood's path) are judged for cost.
                    if dest not in active or actual is None:
                        continue
                expected = expected_row.get(dest)
                if actual != expected:
                    report.cost_mismatches.append(
                        f"{protocol}: node {node_id} -> dest {dest}: metric "
                        f"{actual} != oracle cost {expected}"
                    )
    return report


def run_churn_differential(
    seed: int,
    config: ExperimentConfig,
    protocols: tuple[str, ...] = ("aodv", "dsr", "olsr"),
) -> DifferentialReport:
    """Differential oracle on a mobility-churn scenario.

    Runs the same seed's movement schedule under each protocol with the full
    monitor catalog attached.  ``config.churn.settle_time`` must leave a
    quiet tail longer than every protocol's settle margin — the end-of-run
    oracle comparison (strict SPF equality for convergent protocols,
    active-destination validity and never-beats-oracle for reactive ones,
    enforced by :class:`~repro.validation.monitors.RibConsistencyMonitor`)
    is meaningless on a still-moving field, and a run that fails to quiesce
    is reported as skipped, not passed.
    """
    from ..experiments.churn import run_churn_scenario
    from .monitors import settle_margin_for

    if config.churn is None:
        raise ValueError("run_churn_differential requires config.churn")
    needed = max(settle_margin_for(p) for p in protocols) + 2.0
    if config.churn.settle_time < needed:
        raise ValueError(
            f"churn settle_time {config.churn.settle_time} too short for "
            f"{protocols}: need >= {needed} of quiet tail to judge quiescence"
        )
    config = config.with_(validate=False)
    report = DifferentialReport(degree=0, seed=seed, protocols=tuple(protocols))

    for protocol in protocols:
        suite = MonitorSuite()
        result = run_churn_scenario(protocol, seed, config, monitors=suite)
        rib = next(
            m for m in suite.monitors if isinstance(m, RibConsistencyMonitor)
        )
        quiesced = rib.skipped is None
        assert suite.context is not None
        outcome = ProtocolOutcome(
            protocol=protocol,
            sent=result.sent,
            delivered=result.delivered,
            drops_ttl=result.drops_ttl,
            total_drops=result.total_drops,
            converged_to_expected=result.converged_to_expected,
            quiesced=quiesced,
            metrics=_snapshot_metrics(suite.context.network),
            monitor_violations=tuple(str(v) for v in suite.violations),
        )
        report.outcomes[protocol] = outcome
        for v in outcome.monitor_violations:
            report.monitor_violations.append(f"{protocol}: {v}")
        if result.delivered <= 0:
            report.envelope_violations.append(f"{protocol}: delivered nothing")
        if result.delivered + result.total_drops > result.sent:
            report.envelope_violations.append(
                f"{protocol}: delivered {result.delivered} + dropped "
                f"{result.total_drops} > sent {result.sent}"
            )
        if not quiesced:
            report.skipped.append(
                f"{protocol}: not quiesced ({rib.skipped}) — end state not judged"
            )
    return report
