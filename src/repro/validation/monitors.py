"""Online invariant monitors.

Each monitor subscribes to the :class:`~repro.sim.tracing.TraceBus` per-kind
fast paths (or samples live network state on a virtual-time ticker) and
accumulates :class:`Violation` records.  A clean protocol implementation
produces zero violations on every scenario; a subtle bug — a broken split
horizon, a stale cache entry, an unguarded queue — trips at least one
monitor without any figure-level assertion having to notice.

Monitors are intentionally *redundant* with the aggregate metrics: they
re-derive what the collectors compute from an independent angle (per-packet
lifecycles, an offline SPF oracle) so that a bug in either layer shows up as
a disagreement.

The standard catalog (see ``docs/validation.md``):

* :class:`PacketConservationMonitor` — every injected data packet is
  delivered, dropped, or still physically inside the network at end of run;
  no packet terminates twice or appears from nowhere.
* :class:`TtlMonitor` — per-packet TTL strictly decreases hop by hop;
  ``TTL_EXPIRED`` drops happen exactly at TTL 0 and their count matches the
  per-node drop counters.
* :class:`QueueOccupancyMonitor` — sampled on a virtual-time ticker: no
  drop-tail queue ever exceeds its configured capacity.
* :class:`FibLoopMonitor` — for protocols that promise loop-freedom (RIP's
  split horizon with poison reverse, DUAL's feasibility condition), no
  forwarding loop may ever exist in the network-wide FIBs, on *any*
  destination, for any positive amount of virtual time.
* :class:`NoRouteAfterConvergenceMonitor` — once the network-wide routing
  convergence instant has passed (the last FIB change anywhere), no further
  ``NO_ROUTE`` drops may occur.
* :class:`RibConsistencyMonitor` — after the network quiesces, every node's
  route metrics and FIB next hops are diffed against a deterministic SPF
  oracle on the post-failure topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim.tracing import DropCause, PacketRecord, RouteChangeRecord, TraceBus

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network
    from ..sim.engine import Simulator
    from ..topology.graph import Topology

__all__ = [
    "Violation",
    "InvariantViolationError",
    "RunContext",
    "Monitor",
    "MonitorSuite",
    "ConvergenceSentinel",
    "PacketConservationMonitor",
    "TtlMonitor",
    "QueueOccupancyMonitor",
    "FibLoopMonitor",
    "NoRouteAfterConvergenceMonitor",
    "RibConsistencyMonitor",
    "CONVERGENT_PROTOCOLS",
    "LOOP_FREE_PROTOCOLS",
    "REACTIVE_PROTOCOLS",
    "SOURCE_ROUTED_PROTOCOLS",
    "settle_margin_for",
]

#: Protocols expected to re-converge to SPF-optimal routes after a single
#: link failure (given a long enough observation window).  Route-flap
#: damping variants may legitimately suppress routes past the end of the
#: window and ``static`` never reacts at all, so they are excluded from the
#: RIB consistency diff.
CONVERGENT_PROTOCOLS = frozenset(
    {
        "rip",
        "rip-hd",
        "dbf",
        "dual",
        "bgp",
        "bgp3",
        "bgp-pd",
        "bgp3-pd",
        "bgp-ssld",
        "bgp3-ssld",
        "spf",
        "spf-slow",
        "spf-lfa",
        # OLSR is proactive and MPR flooding preserves hop-count-optimal
        # paths on unit-cost graphs, so it is held to the same bar.
        "olsr",
    }
)

#: On-demand protocols: converged means "every *active* destination's routes
#: agree with the oracle", not "every node knows every destination" — a
#: reactive node with no traffic legitimately has no routes at all.
REACTIVE_PROTOCOLS = frozenset({"aodv", "dsr"})

#: Protocols that forward on origin-stamped source routes instead of FIBs.
#: The fib-loop monitor checks their cached paths (``source_route_loops``)
#: rather than walking (empty) FIB views.
SOURCE_ROUTED_PROTOCOLS = frozenset({"dsr"})


#: Quiet time (s) after which each protocol's silence implies convergence.
#: Every supported protocol name must appear here explicitly — see
#: :func:`settle_margin_for`.
_SETTLE_MARGINS: dict[str, float] = {
    "rip": 6.0,  # 5 s max triggered-update damping
    "rip-hd": 95.0,  # 90 s hold-down
    "dbf": 6.0,  # 5 s max triggered-update damping
    "dual": 3.0,
    "bgp": 32.0,  # 30 s MRAI + 1 jitter
    "bgp-pd": 32.0,
    "bgp-rfd": 32.0,
    "bgp-ssld": 32.0,
    "bgp3": 5.0,  # 3 s MRAI + 0.5 jitter
    "bgp3-pd": 5.0,
    "bgp3-rfd": 5.0,
    "bgp3-ssld": 5.0,
    "spf": 4.0,  # spf_delay throttle
    "spf-slow": 4.0,
    "spf-lfa": 4.0,
    "static": 3.0,
    "aodv": 12.0,  # last RREQ retry fires up to 2.8 s * 2^2 after silence
    "dsr": 12.0,  # same discovery backoff horizon
    # TOP_HOLD_TIME (3 x 5 s TC interval) is OLSR's silent-churn horizon: a
    # stale TC entry can age out — and reroute the node — that long after
    # the last message, plus a HELLO period of slack.
    "olsr": 18.0,
}


def settle_margin_for(protocol: str) -> float:
    """Quiet time (s) after which a protocol's silence implies convergence.

    A network can be *quiet* without being *converged*: BGP suppresses
    updates for up to one MRAI interval, a distance-vector trigger can sit
    in its damping window, and a held-down RIP route refuses replacements
    for the whole hold-down period.  The margin is each protocol's maximum
    silent-churn horizon plus slack — only after that much quiet may the
    oracle treat the observed state as final.

    Unknown names raise instead of falling back to a default: a protocol
    added without a margin entry would otherwise be judged against a quiet
    window that has nothing to do with its timers, and every monitor
    downstream would silently misfire or mis-skip.
    """
    try:
        return _SETTLE_MARGINS[protocol]
    except KeyError:
        raise ValueError(
            f"no settle margin registered for protocol {protocol!r}; add it "
            f"to _SETTLE_MARGINS (known: {sorted(_SETTLE_MARGINS)})"
        ) from None


@dataclass(frozen=True)
class Violation:
    """One invariant breach, attributed to the monitor that caught it."""

    monitor: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.monitor}] t={self.time:.3f}: {self.detail}"


class InvariantViolationError(AssertionError):
    """Raised by strict validation when any monitor recorded a violation."""

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  {v}" for v in violations)
        super().__init__(f"{len(violations)} invariant violation(s):\n{lines}")


@dataclass
class RunContext:
    """Everything a monitor may need about the scenario being validated."""

    sim: "Simulator"
    network: "Network"
    bus: TraceBus
    topology: "Topology"
    protocol: str
    #: Links failed during the run, as canonical (min, max) endpoint pairs.
    failed_links: tuple[tuple[int, int], ...] = ()
    detect_time: float = 0.0
    end_time: float = 0.0
    #: Distance-vector infinity: oracle costs at/above this are unreachable.
    infinity: Optional[int] = None
    #: Seconds of quiet (no FIB change) before ``end_time`` required before
    #: the RIB diff is meaningful; a still-churning network is skipped.
    #: Scenario wiring sets this from :func:`settle_margin_for`.
    settle_margin: float = 3.0
    #: Destinations that carry data traffic.  Reactive protocols (AODV/DSR)
    #: are judged per active destination only: nodes with no traffic toward
    #: a destination legitimately hold no route to it.
    active_dests: frozenset[int] = frozenset()
    #: Strict reactive cost check: on a static single-failure scenario a
    #: reactive flood discovers a shortest path, so active-destination
    #: metrics must equal the oracle exactly.  Under churn, link restores
    #: legitimately leave reactive routes longer than optimal (they never
    #: re-optimize a working route), so churn wiring relaxes this to
    #: validity + loop-freedom + metric >= oracle.
    reactive_strict: bool = True
    #: Shared routing-activity tracker, installed by :class:`MonitorSuite`.
    sentinel: Optional["ConvergenceSentinel"] = None


class Monitor:
    """Base class: collects violations; subclasses hook attach/finalize."""

    name = "monitor"

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        #: Reason the monitor declined to judge this run (None = it judged).
        self.skipped: Optional[str] = None

    def attach(self, ctx: RunContext) -> None:
        """Subscribe to the bus / arm samplers.  Called before the run."""

    def finalize(self, ctx: RunContext) -> None:
        """End-of-run checks.  Called after the simulation completes."""

    def _flag(self, time: float, detail: str) -> None:
        self.violations.append(Violation(self.name, time, detail))


class ConvergenceSentinel(Monitor):
    """Tracks the last instant any *routing state* changed, anywhere.

    FIB-change records alone under-report convergence activity: BGP path
    lengths can ripple through the network without any next hop changing,
    and a distance-vector metric can count up while its next hop stays
    put — in both cases ``set_next_hop`` is a no-op and no route record is
    published.  The sentinel therefore combines two signals:

    * every :class:`RouteChangeRecord` on the bus, and
    * a virtual-time ticker that samples every node's ``route_metric``
      table and timestamps any difference from the previous sample.

    Other monitors read :attr:`last_activity` to decide whether the network
    has genuinely quiesced.  The sentinel itself never flags violations.
    """

    name = "convergence-sentinel"

    def __init__(self, sample_interval: float = 1.0) -> None:
        super().__init__()
        self.sample_interval = sample_interval
        self.last_activity: Optional[float] = None
        self._snapshot: Optional[dict[int, dict[int, Optional[int]]]] = None

    def attach(self, ctx: RunContext) -> None:
        self._ctx = ctx
        ctx.bus.subscribe("route", self._on_route)
        ctx.sim.schedule(self.sample_interval, self._sample)

    def _on_route(self, record: RouteChangeRecord) -> None:
        self.last_activity = record.time

    def _metrics(self) -> dict[int, dict[int, Optional[int]]]:
        nodes = sorted(self._ctx.topology.nodes)
        if self._ctx.protocol in REACTIVE_PROTOCOLS and self._ctx.active_dests:
            # Reactive tables churn with every discovery for every flow; the
            # convergence question is only about destinations with traffic.
            nodes = sorted(self._ctx.active_dests)
        out: dict[int, dict[int, Optional[int]]] = {}
        for node in self._ctx.network.iter_nodes():
            if node.protocol is None:
                continue
            out[node.id] = {
                dest: node.protocol.route_metric(dest)
                for dest in nodes
                if dest != node.id
            }
        return out

    def _observe(self) -> None:
        current = self._metrics()
        if self._snapshot is not None and current != self._snapshot:
            # The change happened somewhere in (previous tick, now]; the
            # conservative timestamp is now.
            self.last_activity = self._ctx.sim.now
        self._snapshot = current

    def _sample(self) -> None:
        self._observe()
        if self._ctx.sim.now + self.sample_interval <= self._ctx.end_time:
            self._ctx.sim.schedule(self.sample_interval, self._sample)

    def finalize(self, ctx: RunContext) -> None:
        # Catch churn that landed after the final tick.
        self._observe()


def _quiesced(ctx: RunContext, own_last_change: Optional[float]) -> bool:
    """Has routing activity been quiet for at least ``ctx.settle_margin``?"""
    last = own_last_change
    if ctx.sentinel is not None:
        sl = ctx.sentinel.last_activity
        if sl is not None and (last is None or sl > last):
            last = sl
    return last is None or ctx.end_time - last >= ctx.settle_margin


class PacketConservationMonitor(Monitor):
    """Every sent data packet is delivered, dropped, or still in flight.

    Subscribes to the packet fast path and tracks per-packet lifecycles by
    id: a packet must be sent exactly once before it terminates, may
    terminate at most once, and at end of run the outstanding population
    must equal the number of data packets physically inside the network
    (queued, serializing, or propagating on some link).
    """

    name = "packet-conservation"

    def __init__(self) -> None:
        super().__init__()
        self.sent: set[int] = set()
        self.terminated: dict[int, str] = {}

    def attach(self, ctx: RunContext) -> None:
        ctx.bus.subscribe("packet", self._on_packet)

    def _on_packet(self, record: PacketRecord) -> None:
        pid = record.packet_id
        if record.kind == "send":
            if pid in self.sent:
                self._flag(record.time, f"packet {pid} sent twice")
            self.sent.add(pid)
        elif record.kind in ("deliver", "drop"):
            if pid not in self.sent:
                self._flag(
                    record.time, f"packet {pid} {record.kind}ed without a send"
                )
            if pid in self.terminated:
                self._flag(
                    record.time,
                    f"packet {pid} {record.kind}ed after already being "
                    f"{self.terminated[pid]}ed",
                )
            self.terminated[pid] = record.kind

    def finalize(self, ctx: RunContext) -> None:
        outstanding = len(self.sent) - len(set(self.sent) & set(self.terminated))
        in_network = sum(
            link.occupancy(data_only=True) for link in ctx.network.iter_links()
        )
        # Reactive protocols park originated packets in discovery buffers;
        # those are alive but not on any link.
        buffered = sum(
            node.protocol.pending_data_packets()
            for node in ctx.network.iter_nodes()
            if node.protocol is not None
        )
        if outstanding != in_network + buffered:
            self._flag(
                ctx.sim.now,
                f"{outstanding} packet(s) unaccounted for but {in_network} "
                f"data packet(s) physically in the network and {buffered} "
                f"buffered awaiting routes",
            )


class TtlMonitor(Monitor):
    """TTL strictly decreases along every packet's journey.

    Needs forward records (``record_forwards`` on the network) for the
    hop-by-hop view; without them it still checks the send/deliver/drop
    endpoints.  Also cross-checks the ``TTL_EXPIRED`` drop population
    against the per-node drop counters, so a loop that the tracing layer
    sees but the counters miss (or vice versa) is a violation.
    """

    name = "ttl"

    def __init__(self) -> None:
        super().__init__()
        self._last_ttl: dict[int, int] = {}
        self.ttl_drops = 0

    def attach(self, ctx: RunContext) -> None:
        ctx.bus.subscribe("packet", self._on_packet)

    def _on_packet(self, record: PacketRecord) -> None:
        pid = record.packet_id
        if record.kind == "send":
            self._last_ttl[pid] = record.ttl
            return
        last = self._last_ttl.get(pid)
        if record.kind == "forward":
            if last is not None and record.ttl >= last:
                self._flag(
                    record.time,
                    f"packet {pid} forwarded at node {record.node} with TTL "
                    f"{record.ttl} >= previous {last}",
                )
            self._last_ttl[pid] = record.ttl
        elif record.kind == "deliver":
            if last is not None and record.ttl > last:
                self._flag(
                    record.time,
                    f"packet {pid} delivered with TTL {record.ttl} > last "
                    f"observed {last}",
                )
        elif record.kind == "drop" and record.cause is DropCause.TTL_EXPIRED:
            self.ttl_drops += 1
            if record.ttl > 0:
                self._flag(
                    record.time,
                    f"packet {pid} dropped TTL_EXPIRED with TTL {record.ttl} > 0",
                )

    def finalize(self, ctx: RunContext) -> None:
        counted = ctx.network.total_drops(DropCause.TTL_EXPIRED)
        if counted != self.ttl_drops:
            self._flag(
                ctx.sim.now,
                f"loop-drop accounting mismatch: trace saw {self.ttl_drops} "
                f"TTL_EXPIRED drops, node counters say {counted}",
            )


class QueueOccupancyMonitor(Monitor):
    """No drop-tail queue may ever hold more than its capacity.

    The queue enforces this at push time by construction, so the monitor is
    a tripwire against regressions that bypass ``DropTailQueue.push`` (or
    corrupt the deque): it samples every channel on a virtual-time ticker.
    """

    name = "queue-occupancy"

    def __init__(self, sample_interval: float = 1.0) -> None:
        super().__init__()
        self.sample_interval = sample_interval
        self.samples = 0

    def attach(self, ctx: RunContext) -> None:
        self._ctx = ctx
        ctx.sim.schedule(self.sample_interval, self._sample)

    def _sample(self) -> None:
        ctx = self._ctx
        self.samples += 1
        capacity = None
        for link in ctx.network.iter_links():
            a, b = link.endpoints
            capacity = link.queue_capacity
            for end in (a, b):
                depth = link.queue_length(end)
                if depth > capacity:
                    self._flag(
                        ctx.sim.now,
                        f"queue {end}->{link.other_end(end)} holds {depth} "
                        f"> capacity {capacity}",
                    )
        if ctx.sim.now + self.sample_interval <= ctx.end_time:
            ctx.sim.schedule(self.sample_interval, self._sample)


class NoRouteAfterConvergenceMonitor(Monitor):
    """No ``NO_ROUTE`` drops after the network-wide convergence instant.

    Tracks the last FIB change anywhere (the measured routing-convergence
    time) and every NO_ROUTE drop; a drop strictly after the last change
    means a router kept a FIB hole past convergence — which, on a topology
    the oracle says is still fully connected, is a protocol bug.
    """

    name = "no-route-after-convergence"

    def __init__(self) -> None:
        super().__init__()
        self.last_route_change: Optional[float] = None
        self.no_route_drops: list[tuple[float, int]] = []

    def attach(self, ctx: RunContext) -> None:
        ctx.bus.subscribe("route", self._on_route)
        ctx.bus.subscribe("packet", self._on_packet)

    def _on_route(self, record: RouteChangeRecord) -> None:
        self.last_route_change = record.time

    def _on_packet(self, record: PacketRecord) -> None:
        if record.kind == "drop" and record.cause is DropCause.NO_ROUTE:
            self.no_route_drops.append((record.time, record.node))

    def finalize(self, ctx: RunContext) -> None:
        if not _oracle_fully_connected(ctx):
            self.skipped = "post-failure topology not fully connected"
            return
        if not _quiesced(ctx, self.last_route_change):
            # Quiet-but-not-converged networks (pending MRAI, damping) may
            # legitimately still be dropping; only judge settled runs.
            self.skipped = "network still churning at end of run"
            return
        # Convergence instant: the last FIB change, or — for routing state
        # the bus never sees (DSR's cache lives outside any FIB) — the
        # sentinel's last observed activity.
        candidates = [self.last_route_change]
        if ctx.sentinel is not None:
            candidates.append(ctx.sentinel.last_activity)
        known = [t for t in candidates if t is not None]
        converged_at = max(known) if known else ctx.detect_time
        for time, node in self.no_route_drops:
            if time > converged_at:
                self._flag(
                    time,
                    f"NO_ROUTE drop at node {node} after network convergence "
                    f"(last FIB change at t={converged_at:.3f})",
                )


#: Protocols whose design guarantees loop-free FIB state at every instant:
#: RIP's split horizon with poison reverse (the paper's Observation 2 — RIP
#: never produced a single TTL drop), DUAL's feasibility condition, AODV's
#: destination-sequence-number rule, and DSR's acyclic-by-construction
#: source routes.  Cache-based protocols (DBF, BGP) loop transiently by
#: design and are not checked.
LOOP_FREE_PROTOCOLS = frozenset({"rip", "rip-hd", "dual", "aodv", "dsr"})


class FibLoopMonitor(Monitor):
    """No forwarding loop may ever exist in a loop-free protocol's FIBs.

    Maintains a live network-wide FIB view per destination (seeded from the
    warm-started network, updated from every route record) and re-walks the
    next-hop chain from each changed node.  A cycle that persists for any
    positive amount of virtual time is a violation; a cycle created and
    destroyed at the same instant (two FIB updates at one timestamp) is
    ignored, since no packet can be forwarded in a zero-length window.

    This is the monitor that catches split-horizon bugs: a broken poison
    reverse lets a neighbor hand a router its own route back after a
    failure, forming a two-node loop on some destination — usually one that
    carries no traffic, so no packet-level metric ever notices.
    """

    name = "fib-loop"

    def __init__(self, sample_interval: float = 1.0) -> None:
        super().__init__()
        self.sample_interval = sample_interval
        #: dest -> {node -> next_hop}
        self._views: dict[int, dict[int, Optional[int]]] = {}
        #: dest -> (formation time, description) for a loop awaiting
        #: confirmation that it outlived its formation instant.
        self._pending: dict[int, tuple[float, str]] = {}
        self.loops_confirmed = 0
        self._source_routed = False
        self._seen_paths: set[tuple[int, tuple[int, ...]]] = set()

    def attach(self, ctx: RunContext) -> None:
        if ctx.protocol not in LOOP_FREE_PROTOCOLS:
            self.skipped = (
                f"protocol {ctx.protocol!r} makes no loop-freedom promise"
            )
            return
        if ctx.protocol in SOURCE_ROUTED_PROTOCOLS:
            # Source-routed protocols keep FIBs empty; the loop surface is
            # the per-node path cache, sampled on a virtual-time ticker.
            self._source_routed = True
            self._ctx = ctx
            ctx.sim.schedule(self.sample_interval, self._sample_source_routes)
            return
        for node in ctx.network.iter_nodes():
            for dest, nh in node.fib.items():
                self._views.setdefault(dest, {})[node.id] = nh
        ctx.bus.subscribe("route", self._on_route)

    def _sample_source_routes(self) -> None:
        ctx = self._ctx
        self._check_source_routes(ctx)
        if ctx.sim.now + self.sample_interval <= ctx.end_time:
            ctx.sim.schedule(self.sample_interval, self._sample_source_routes)

    def _check_source_routes(self, ctx: RunContext) -> None:
        for node in ctx.network.iter_nodes():
            loops = getattr(node.protocol, "source_route_loops", None)
            if loops is None:
                continue
            for path in loops():
                key = (node.id, path)
                if key in self._seen_paths:
                    continue
                self._seen_paths.add(key)
                self.loops_confirmed += 1
                self._flag(
                    ctx.sim.now,
                    f"source route {'->'.join(map(str, path))} cached at "
                    f"node {node.id} revisits a node",
                )

    def _on_route(self, record: RouteChangeRecord) -> None:
        view = self._views.setdefault(record.dest, {})
        if record.new_next_hop is None:
            view.pop(record.node, None)
        else:
            view[record.node] = record.new_next_hop
        cycle = self._find_cycle(view, record.node)
        pending = self._pending.get(record.dest)
        if cycle is not None:
            if pending is None:
                detail = (
                    f"forwarding loop {'->'.join(map(str, cycle))} for dest "
                    f"{record.dest}"
                )
                self._pending[record.dest] = (record.time, detail)
            return
        if pending is not None:
            formed_at, detail = pending
            del self._pending[record.dest]
            if record.time > formed_at:
                # The loop survived past its formation instant: real packets
                # could have circulated.
                self.loops_confirmed += 1
                self._flag(formed_at, detail)

    @staticmethod
    def _find_cycle(
        view: dict[int, Optional[int]], start: int
    ) -> Optional[list[int]]:
        path = [start]
        seen = {start}
        node = start
        for _ in range(len(view) + 1):
            nxt = view.get(node)
            if nxt is None:
                return None
            path.append(nxt)
            if nxt in seen:
                return path
            seen.add(nxt)
            node = nxt
        return path  # walk exceeded the view size: necessarily cyclic

    def finalize(self, ctx: RunContext) -> None:
        if self._source_routed:
            self._check_source_routes(ctx)
            return
        for dest, (formed_at, detail) in sorted(self._pending.items()):
            if ctx.end_time > formed_at:
                self.loops_confirmed += 1
                self._flag(formed_at, detail + " (still present at end of run)")
        self._pending.clear()


class RibConsistencyMonitor(Monitor):
    """Converged routes must match an offline SPF oracle.

    After the run, re-derives shortest-path costs on the post-failure
    topology (deterministic Dijkstra, same tie-break the protocols use) and
    diffs every node's ``route_metric`` and FIB next hop against it:

    * reachable destinations must carry the oracle's exact cost;
    * the installed next hop must lie on *some* shortest path
      (``dist(nh, d) + w(n, nh) == dist(n, d)``) — the loop-freedom
      condition;
    * oracle-unreachable destinations must have no route.

    The diff only makes sense on a quiesced network: if any FIB changed
    within ``ctx.settle_margin`` seconds of the end of the run, the monitor
    reports itself skipped instead of producing noise.
    """

    name = "rib-consistency"

    def __init__(self) -> None:
        super().__init__()
        self.last_route_change: Optional[float] = None
        self.nodes_checked = 0

    def attach(self, ctx: RunContext) -> None:
        ctx.bus.subscribe("route", self._on_route)

    def _on_route(self, record: RouteChangeRecord) -> None:
        self.last_route_change = record.time

    def finalize(self, ctx: RunContext) -> None:
        if ctx.protocol in REACTIVE_PROTOCOLS:
            self._finalize_reactive(ctx)
            return
        if ctx.protocol not in CONVERGENT_PROTOCOLS:
            self.skipped = f"protocol {ctx.protocol!r} makes no convergence promise"
            return
        if not _quiesced(ctx, self.last_route_change):
            self.skipped = (
                f"network still churning at end of run (last FIB change "
                f"t={self.last_route_change}, end t={ctx.end_time:.3f})"
            )
            return
        graph = _post_failure_graph(ctx)
        now = ctx.sim.now
        for node in ctx.network.iter_nodes():
            if node.protocol is None:
                continue
            self.nodes_checked += 1
            costs = self._dist_cache(graph, node.id)
            for dest in sorted(ctx.topology.nodes):
                if dest == node.id:
                    continue
                expected = costs.get(dest)
                if expected is not None and ctx.infinity is not None:
                    if expected >= ctx.infinity:
                        expected = None
                actual = node.protocol.route_metric(dest)
                if expected is None:
                    if actual is not None:
                        self._flag(
                            now,
                            f"node {node.id}: dest {dest} unreachable per "
                            f"oracle but protocol reports metric {actual}",
                        )
                    continue
                if actual != expected:
                    self._flag(
                        now,
                        f"node {node.id}: dest {dest} metric {actual} != "
                        f"oracle cost {expected}",
                    )
                nh = node.next_hop(dest)
                if nh is None:
                    self._flag(
                        now,
                        f"node {node.id}: dest {dest} reachable (cost "
                        f"{expected}) but FIB has no next hop",
                    )
                    continue
                link = node.links.get(nh)
                if link is None or not link.up:
                    self._flag(
                        now,
                        f"node {node.id}: dest {dest} next hop {nh} is not a "
                        f"live neighbor",
                    )
                    continue
                w = link.spec.cost
                d_nd = self._dist_cache(graph, nh).get(dest)
                if d_nd is None or d_nd + w != expected:
                    self._flag(
                        now,
                        f"node {node.id}: dest {dest} next hop {nh} is off "
                        f"every shortest path (dist({nh},{dest})="
                        f"{d_nd} + w={w} != {expected})",
                    )

    def _finalize_reactive(self, ctx: RunContext) -> None:
        """Reactive convergence: judge only destinations with traffic.

        For each active destination, every node *holding* a route to it must
        hold a usable one: the forwarding chain (FIB next hops for AODV, the
        cached source route for DSR) must reach the destination over live
        links without revisiting a node, and a route to an oracle-unreachable
        destination is a stale blackhole.  Under ``ctx.reactive_strict``
        (static single-failure scenarios, where a discovery flood provably
        finds a shortest path) metrics must also equal the oracle cost
        exactly; under churn they need only never beat it.  Nodes without a
        route are never flagged — on-demand protocols owe routes only to
        traffic they have seen.
        """
        if not ctx.active_dests:
            self.skipped = "no active destinations to judge reactively"
            return
        if not _quiesced(ctx, self.last_route_change):
            self.skipped = (
                f"network still churning at end of run (last FIB change "
                f"t={self.last_route_change}, end t={ctx.end_time:.3f})"
            )
            return
        graph = _post_failure_graph(ctx)
        now = ctx.sim.now
        for dest in sorted(ctx.active_dests):
            for node in ctx.network.iter_nodes():
                if node.protocol is None or node.id == dest:
                    continue
                metric = node.protocol.route_metric(dest)
                if metric is None:
                    continue
                self.nodes_checked += 1
                expected = self._dist_cache(graph, node.id).get(dest)
                if expected is None:
                    self._flag(
                        now,
                        f"node {node.id}: active dest {dest} unreachable per "
                        f"oracle but a stale route (metric {metric}) survives",
                    )
                    continue
                if ctx.reactive_strict:
                    if metric != expected:
                        self._flag(
                            now,
                            f"node {node.id}: active dest {dest} metric "
                            f"{metric} != oracle cost {expected}",
                        )
                elif metric < expected:
                    self._flag(
                        now,
                        f"node {node.id}: active dest {dest} metric {metric} "
                        f"beats the oracle's shortest cost {expected}",
                    )
                self._check_chain(ctx, node, dest, now)

    def _check_chain(self, ctx: RunContext, node, dest: int, now: float) -> None:
        """Walk the actual forwarding chain from ``node`` toward ``dest``."""
        path_fn = getattr(node.protocol, "route_path", None)
        if path_fn is not None:
            path = path_fn(dest)
            if path is None:
                return
            if len(set(path)) != len(path):
                self._flag(
                    now,
                    f"node {node.id}: source route to {dest} revisits a node "
                    f"({'->'.join(map(str, path))})",
                )
                return
            if path[-1] != dest:
                self._flag(
                    now,
                    f"node {node.id}: source route to {dest} ends at "
                    f"{path[-1]}",
                )
                return
            for i in range(len(path) - 1):
                hop = ctx.network.node(path[i]).links.get(path[i + 1])
                if hop is None or not hop.up:
                    self._flag(
                        now,
                        f"node {node.id}: source route to {dest} uses dead "
                        f"link {path[i]}-{path[i + 1]}",
                    )
                    return
            return
        current = node
        seen = {node.id}
        while True:
            nh = current.next_hop(dest)
            if nh is None:
                self._flag(
                    now,
                    f"node {node.id}: route to active dest {dest} dead-ends "
                    f"at node {current.id} (no next hop)",
                )
                return
            link = current.links.get(nh)
            if link is None or not link.up:
                self._flag(
                    now,
                    f"node {node.id}: route to active dest {dest} crosses "
                    f"dead link {current.id}-{nh}",
                )
                return
            if nh == dest:
                return
            if nh in seen:
                self._flag(
                    now,
                    f"node {node.id}: forwarding chain to active dest {dest} "
                    f"loops at node {nh}",
                )
                return
            seen.add(nh)
            current = ctx.network.node(nh)

    def _dist_cache(self, graph, src: int) -> dict[int, int]:
        cache = getattr(self, "_dists", None)
        if cache is None:
            cache = self._dists = {}
        dists = cache.get(src)
        if dists is None:
            from ..topology.graph import shortest_path_tree

            tree = shortest_path_tree(graph, src)
            dists = {dest: _path_cost(graph, path) for dest, path in tree.items()}
            cache[src] = dists
        return dists


def _path_cost(graph, path: list[int]) -> int:
    return sum(
        graph.edges[path[i], path[i + 1]].get("weight", 1)
        for i in range(len(path) - 1)
    )


def _post_failure_graph(ctx: RunContext):
    """networkx view of the topology with every failed link removed."""
    graph = ctx.topology.to_networkx()
    for link in ctx.network.iter_links():
        if not link.up:
            a, b = link.endpoints
            if graph.has_edge(a, b):
                graph.remove_edge(a, b)
    return graph


def _oracle_fully_connected(ctx: RunContext) -> bool:
    import networkx as nx

    graph = _post_failure_graph(ctx)
    return nx.is_connected(graph) if len(graph) else True


class MonitorSuite:
    """A bundle of monitors attached and finalized as one unit.

    ``run_scenario`` drives the lifecycle: :meth:`attach` before the
    simulation (subscribing each monitor to the bus), :meth:`finalize`
    after it (end-of-run checks).  The suite keeps its :class:`RunContext`
    so callers — the differential oracle, tests — can inspect the live
    network after the run.
    """

    def __init__(self, monitors: Optional[list[Monitor]] = None) -> None:
        self.monitors = monitors if monitors is not None else self.default_monitors()
        self.context: Optional[RunContext] = None

    @staticmethod
    def default_monitors() -> list[Monitor]:
        # The sentinel must come first: its finalize() takes the last
        # routing-state sample the quiesce checks below depend on.
        return [
            ConvergenceSentinel(),
            PacketConservationMonitor(),
            TtlMonitor(),
            QueueOccupancyMonitor(),
            FibLoopMonitor(),
            NoRouteAfterConvergenceMonitor(),
            RibConsistencyMonitor(),
        ]

    def attach(self, ctx: RunContext) -> None:
        self.context = ctx
        for monitor in self.monitors:
            if isinstance(monitor, ConvergenceSentinel):
                ctx.sentinel = monitor
        for monitor in self.monitors:
            monitor.attach(ctx)

    def finalize(self) -> list[Violation]:
        assert self.context is not None, "attach() must run before finalize()"
        for monitor in self.monitors:
            monitor.finalize(self.context)
        return self.violations

    @property
    def violations(self) -> list[Violation]:
        return [v for m in self.monitors for v in m.violations]

    @property
    def skips(self) -> dict[str, str]:
        return {m.name: m.skipped for m in self.monitors if m.skipped}

    def raise_on_violation(self) -> None:
        violations = self.violations
        if violations:
            raise InvariantViolationError(violations)
