"""Deterministic scenario fuzzer.

From one master seed the fuzzer generates a stream of randomized scenarios —
mesh size and degree, protocol, traffic rate, failure time, observation
window — runs each with the full online-monitor catalog attached, and
reports every invariant violation or crash.  Each case is reproducible in
isolation from ``(master_seed, index)`` alone, and a failing case can be
*shrunk*: a greedy pass that re-runs progressively simpler variants (smaller
mesh, lower rate, shorter window) and keeps any simplification that still
fails, ending in a minimal repro dict suitable for a regression fixture.

Used by ``python -m repro validate`` and the CI ``validate-smoke`` job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Optional

from ..experiments.config import ExperimentConfig

__all__ = [
    "FuzzCase",
    "FuzzOutcome",
    "FuzzReport",
    "generate_case",
    "run_case",
    "fuzz",
    "shrink",
]

#: Protocols the fuzzer samples from: the paper's distance-vector pair, a
#: fast path-vector variant, and the loop-free extensions — all cheap enough
#: to keep a 25-case smoke run under a couple of minutes.
FUZZ_PROTOCOLS = ("rip", "dbf", "bgp3", "dual", "spf")

#: Mesh degrees under study (the paper's low-connectivity regime).
FUZZ_DEGREES = (3, 4, 5)


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined fuzz scenario."""

    master_seed: int
    index: int
    protocol: str
    degree: int
    rows: int
    cols: int
    seed: int
    rate_pps: float
    fail_time: float
    post_fail_window: float
    prioritize_control: bool = False

    def config(self) -> ExperimentConfig:
        return ExperimentConfig.quick().with_(
            rows=self.rows,
            cols=self.cols,
            degrees=(self.degree,),
            protocols=(self.protocol,),
            runs=1,
            seed=self.seed,
            fail_time=self.fail_time,
            post_fail_window=self.post_fail_window,
            rate_pps=self.rate_pps,
            prioritize_control=self.prioritize_control,
        )

    def as_dict(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "index": self.index,
            "protocol": self.protocol,
            "degree": self.degree,
            "rows": self.rows,
            "cols": self.cols,
            "seed": self.seed,
            "rate_pps": self.rate_pps,
            "fail_time": self.fail_time,
            "post_fail_window": self.post_fail_window,
            "prioritize_control": self.prioritize_control,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(**data)

    def describe(self) -> str:
        return (
            f"case #{self.index} (master={self.master_seed}): "
            f"{self.protocol} degree={self.degree} mesh={self.rows}x{self.cols} "
            f"seed={self.seed} rate={self.rate_pps}pps "
            f"fail@{self.fail_time}s window={self.post_fail_window}s"
            + (" prio-ctl" if self.prioritize_control else "")
        )


@dataclass
class FuzzOutcome:
    """Result of running one case: clean, violating, or crashed."""

    case: FuzzCase
    violations: tuple[str, ...] = ()
    skips: tuple[str, ...] = ()
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations) or self.error is not None


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    master_seed: int
    outcomes: list[FuzzOutcome]

    @property
    def failures(self) -> list[FuzzOutcome]:
        return [o for o in self.outcomes if o.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        n = len(self.outcomes)
        bad = len(self.failures)
        status = "OK" if bad == 0 else "FAIL"
        return f"[{status}] fuzz master_seed={self.master_seed}: {n} cases, {bad} failing"


def generate_case(master_seed: int, index: int) -> FuzzCase:
    """Deterministically derive case ``index`` of stream ``master_seed``.

    Every scenario dimension comes from one local PRNG seeded by the pair,
    so regenerating any case never requires replaying the stream before it.
    """
    rng = random.Random(f"fuzz:{master_seed}:{index}")
    rows = rng.randint(5, 7)
    cols = rng.randint(5, 7)
    return FuzzCase(
        master_seed=master_seed,
        index=index,
        protocol=rng.choice(FUZZ_PROTOCOLS),
        degree=rng.choice(FUZZ_DEGREES),
        rows=rows,
        cols=cols,
        seed=rng.randint(1, 10_000),
        rate_pps=float(rng.choice((5, 10, 20))),
        fail_time=round(rng.uniform(8.0, 14.0), 3),
        post_fail_window=float(rng.choice((30, 40, 50))),
        prioritize_control=rng.random() < 0.2,
    )


def run_case(case: FuzzCase) -> FuzzOutcome:
    """Run one case with the full monitor catalog attached."""
    from ..experiments.scenario import run_scenario
    from .monitors import MonitorSuite

    suite = MonitorSuite()
    try:
        result = run_scenario(
            case.protocol, case.degree, case.seed, case.config(), monitors=suite
        )
    except Exception as exc:  # noqa: BLE001 - a crash is a fuzz finding
        return FuzzOutcome(case=case, error=f"{type(exc).__name__}: {exc}")
    return FuzzOutcome(
        case=case,
        violations=result.violations,
        skips=tuple(f"{k}: {v}" for k, v in sorted(result.monitor_skips.items())),
    )


def fuzz(
    master_seed: int,
    n_cases: int,
    progress: Optional[Callable[[FuzzOutcome], None]] = None,
) -> FuzzReport:
    """Run ``n_cases`` deterministic cases from ``master_seed``."""
    outcomes = []
    for index in range(n_cases):
        outcome = run_case(generate_case(master_seed, index))
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return FuzzReport(master_seed=master_seed, outcomes=outcomes)


#: Shrink moves, tried in order and to fixpoint: each maps a case to a
#: strictly "simpler" candidate or None if it no longer applies.
_SHRINK_MOVES: list[Callable[[FuzzCase], Optional[FuzzCase]]] = [
    lambda c: replace(c, rows=c.rows - 1) if c.rows > 5 else None,
    lambda c: replace(c, cols=c.cols - 1) if c.cols > 5 else None,
    lambda c: replace(c, post_fail_window=30.0) if c.post_fail_window > 30 else None,
    lambda c: replace(c, rate_pps=5.0) if c.rate_pps > 5 else None,
    lambda c: replace(c, prioritize_control=False) if c.prioritize_control else None,
    lambda c: replace(c, fail_time=10.0) if c.fail_time != 10.0 else None,
]


def shrink(
    case: FuzzCase,
    still_fails: Optional[Callable[[FuzzCase], bool]] = None,
    max_runs: int = 32,
) -> FuzzCase:
    """Greedy minimization: keep any simplification that still fails.

    ``still_fails`` defaults to re-running the case with monitors and
    checking for violations/crashes; ``max_runs`` bounds the re-run budget
    so shrinking a flaky failure cannot spin forever.
    """
    if still_fails is None:
        still_fails = lambda c: run_case(c).failed  # noqa: E731
    current = case
    budget = max_runs
    improved = True
    while improved and budget > 0:
        improved = False
        for move in _SHRINK_MOVES:
            if budget <= 0:
                break
            candidate = move(current)
            if candidate is None:
                continue
            budget -= 1
            if still_fails(candidate):
                current = candidate
                improved = True
    return current
