"""Per-figure reproduction harnesses.

One function per figure of the paper's evaluation (plus the headline claim
and the ablations DESIGN.md calls out).  Each returns plain data structures
(:class:`SweepTable` or series dicts) that the benchmarks and
``repro.experiments.report`` render; nothing here touches matplotlib so the
harness runs in headless CI.

Figure index (see DESIGN.md for the full mapping):

* Figure 2  — the regular mesh family itself
* Figure 3  — packet drops due to no route vs node degree
* Figure 4  — TTL expirations vs node degree
* Figure 5  — instantaneous throughput vs time (degrees 3, 4, 6)
* Figure 6  — forwarding-path & network routing convergence vs degree
* Figure 7  — instantaneous packet delay vs time (degrees 4, 5, 6)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..metrics.timeseries import BinnedSeries
from ..topology.mesh import interior_nodes, regular_mesh
from ..topology.validate import check_interior_degree, degree_histogram
from .config import ExperimentConfig
from .runner import PointResult, run_point

__all__ = [
    "SweepTable",
    "figure2_topologies",
    "figure3_drops_no_route",
    "figure4_ttl_expirations",
    "figure5_throughput",
    "figure6_convergence",
    "figure7_delay",
    "headline_bgp_vs_bgp3",
    "ablation_mrai_granularity",
    "ablation_alternate_cache",
    "ablation_load_sensitivity",
    "extension_linkstate",
    "extension_multiflow",
    "extension_transport",
    "extension_random_topology",
    "extension_flap_damping",
    "extension_fast_reroute",
    "extension_loop_freedom_cost",
    "overhead_sweep",
    "ablation_ssld",
    "ablation_detection_delay",
    "extension_scale",
]


@dataclass
class SweepTable:
    """Degree-by-protocol grid of scalar results (one paper figure panel)."""

    title: str
    protocols: tuple[str, ...]
    degrees: tuple[int, ...]
    values: dict[tuple[str, int], float] = field(default_factory=dict)
    points: dict[tuple[str, int], PointResult] = field(default_factory=dict)

    def value(self, protocol: str, degree: int) -> float:
        return self.values[(protocol, degree)]

    def series(self, protocol: str) -> list[tuple[int, float]]:
        """(degree, value) points for one protocol curve."""
        return [(d, self.values[(protocol, d)]) for d in self.degrees]


def _sweep(
    title: str,
    config: ExperimentConfig,
    metric: Callable[[PointResult], float],
    protocols: Optional[tuple[str, ...]] = None,
    degrees: Optional[tuple[int, ...]] = None,
) -> SweepTable:
    protocols = protocols or config.protocols
    degrees = degrees or config.degrees
    table = SweepTable(title=title, protocols=protocols, degrees=degrees)
    for protocol in protocols:
        for degree in degrees:
            point = run_point(protocol, degree, config)
            table.points[(protocol, degree)] = point
            table.values[(protocol, degree)] = metric(point)
    return table


# --------------------------------------------------------------------- FIG 2


def figure2_topologies(
    rows: int = 7, cols: int = 7, degrees: tuple[int, ...] = (4, 5, 6)
) -> dict[int, dict]:
    """The regular-mesh family of Figure 2: build each topology and report
    its structural properties (interior degree regularity is verified)."""
    out: dict[int, dict] = {}
    for degree in degrees:
        topo = regular_mesh(rows, cols, degree)
        interior = interior_nodes(topo, rows, cols)
        check_interior_degree(topo, interior, degree)
        out[degree] = {
            "name": topo.name,
            "n_nodes": topo.n_nodes,
            "n_links": topo.n_links,
            "interior_degree": degree,
            "degree_histogram": degree_histogram(topo),
            "connected": topo.is_connected(),
        }
    return out


# --------------------------------------------------------------------- FIG 3


def figure3_drops_no_route(config: Optional[ExperimentConfig] = None) -> SweepTable:
    """Average number of packet drops due to no route vs node degree."""
    config = config or ExperimentConfig.quick()
    return _sweep(
        "Figure 3: packet drops due to no route vs node degree",
        config,
        lambda p: p.mean_drops_no_route,
    )


# --------------------------------------------------------------------- FIG 4


def figure4_ttl_expirations(config: Optional[ExperimentConfig] = None) -> SweepTable:
    """Average number of TTL expirations (loop deaths) vs node degree."""
    config = config or ExperimentConfig.quick()
    return _sweep(
        "Figure 4: TTL expirations during convergence vs node degree",
        config,
        lambda p: p.mean_drops_ttl,
    )


# --------------------------------------------------------------------- FIG 5


def figure5_throughput(
    config: Optional[ExperimentConfig] = None,
    degrees: tuple[int, ...] = (3, 4, 6),
) -> dict[tuple[str, int], BinnedSeries]:
    """Instantaneous receiver throughput vs time (failure at t=0)."""
    config = config or ExperimentConfig.quick()
    out: dict[tuple[str, int], BinnedSeries] = {}
    for protocol in config.protocols:
        for degree in degrees:
            point = run_point(protocol, degree, config)
            out[(protocol, degree)] = point.mean_throughput()
    return out


# --------------------------------------------------------------------- FIG 6


def figure6_convergence(
    config: Optional[ExperimentConfig] = None,
    points: Optional[dict[tuple[str, int], PointResult]] = None,
) -> tuple[SweepTable, SweepTable]:
    """(a) forwarding-path convergence delay and (b) network routing
    convergence time, vs node degree.

    ``points`` accepts a precomputed sweep (as from ``run_sweep``, e.g. a
    checkpointed/parallel one) instead of re-simulating; seeds and grid
    order match ``run_point``, so the tables are identical either way.
    """
    config = config or ExperimentConfig.quick()
    forwarding = SweepTable(
        title="Figure 6a: forwarding path convergence time vs node degree",
        protocols=config.protocols,
        degrees=config.degrees,
    )
    routing = SweepTable(
        title="Figure 6b: network routing convergence time vs node degree",
        protocols=config.protocols,
        degrees=config.degrees,
    )
    for protocol in config.protocols:
        for degree in config.degrees:
            if points is not None:
                point = points[(protocol, degree)]
            else:
                point = run_point(protocol, degree, config)
            forwarding.points[(protocol, degree)] = point
            routing.points[(protocol, degree)] = point
            forwarding.values[(protocol, degree)] = point.mean_forwarding_convergence
            routing.values[(protocol, degree)] = point.mean_routing_convergence
    return forwarding, routing


# --------------------------------------------------------------------- FIG 7


def figure7_delay(
    config: Optional[ExperimentConfig] = None,
    degrees: tuple[int, ...] = (4, 5, 6),
) -> dict[tuple[str, int], BinnedSeries]:
    """Instantaneous end-to-end delay of delivered packets vs time."""
    config = config or ExperimentConfig.quick()
    out: dict[tuple[str, int], BinnedSeries] = {}
    for protocol in config.protocols:
        for degree in degrees:
            point = run_point(protocol, degree, config)
            out[(protocol, degree)] = point.mean_delay()
    return out


# ------------------------------------------------------------------ headline


def headline_bgp_vs_bgp3(
    config: Optional[ExperimentConfig] = None, degree: int = 5
) -> dict[str, float]:
    """§1 headline: with the same topology and packet rate, BGP drops many
    times more packets than the 3-second-MRAI variant."""
    config = config or ExperimentConfig.quick()
    out: dict[str, float] = {}
    for protocol in ("bgp", "bgp3"):
        point = run_point(protocol, degree, config)
        out[protocol] = point.mean_total_drops - _mean_link_down(point)
    out["ratio"] = out["bgp"] / out["bgp3"] if out["bgp3"] else float("inf")
    return out


def _mean_link_down(point: PointResult) -> float:
    # In-flight deaths on the failed link are identical across protocols
    # (they happen before any protocol reacts); exclude them from the
    # protocol comparison.
    return sum(r.drops_link_down for r in point.runs) / max(1, point.n_runs)


# ----------------------------------------------------------------- ablations


def ablation_mrai_granularity(
    config: Optional[ExperimentConfig] = None, degree: int = 5
) -> SweepTable:
    """Per-neighbor vs per-(neighbor, destination) MRAI (paper §5.2: 'results
    could have been different had the MRAI timer been implemented on a per
    (neighbor, destination) basis')."""
    config = (config or ExperimentConfig.quick()).with_(
        protocols=("bgp", "bgp-pd", "bgp3", "bgp3-pd"), degrees=(degree,)
    )
    return _sweep(
        f"Ablation: MRAI granularity (TTL expirations, degree {degree})",
        config,
        lambda p: p.mean_drops_ttl,
    )


def ablation_alternate_cache(config: Optional[ExperimentConfig] = None) -> SweepTable:
    """RIP vs DBF isolates exactly one design choice — keeping alternate-path
    information — which the paper identifies as the decisive factor (§4.1)."""
    config = (config or ExperimentConfig.quick()).with_(protocols=("rip", "dbf"))
    return _sweep(
        "Ablation: alternate-path cache (drops, RIP vs DBF)",
        config,
        lambda p: p.mean_drops_no_route,
    )


def ablation_load_sensitivity(
    config: Optional[ExperimentConfig] = None,
    degree: int = 5,
    rates: tuple[float, ...] = (10.0, 20.0, 60.0, 150.0),
) -> dict[float, dict[str, float]]:
    """How offered load moves convergence losses from TTL expiry into queue
    overflow once a transient loop saturates its links (DESIGN.md's parameter
    reconstruction rationale, made measurable)."""
    base = config or ExperimentConfig.quick()
    out: dict[float, dict[str, float]] = {}
    for rate in rates:
        cfg = base.with_(rate_pps=rate)
        point = run_point("bgp", degree, cfg)
        out[rate] = {
            "ttl": point.mean_drops_ttl,
            "queue": sum(r.drops_queue for r in point.runs) / point.n_runs,
            "no_route": point.mean_drops_no_route,
        }
    return out


def extension_linkstate(config: Optional[ExperimentConfig] = None) -> SweepTable:
    """Future-work extension: link-state SPF against the paper's protocols."""
    config = (config or ExperimentConfig.quick()).with_(
        protocols=("rip", "dbf", "bgp3", "spf")
    )
    return _sweep(
        "Extension: link-state SPF vs distance/path vector (drops, no route)",
        config,
        lambda p: p.mean_drops_no_route,
    )


def extension_multiflow(
    config: Optional[ExperimentConfig] = None,
    degree: int = 4,
    n_flows: int = 3,
    n_failures: int = 2,
) -> dict[str, dict[str, float]]:
    """Future-work extension (paper §6): multiple flows, overlapping failures.

    Returns per-protocol aggregate and worst-flow delivery ratios plus the
    network-wide drop counts, averaged over ``config.runs`` seeds.
    """
    from .extensions import run_multiflow_scenario

    config = config or ExperimentConfig.quick()
    out: dict[str, dict[str, float]] = {}
    for protocol in config.protocols:
        ratios, worst, drops = [], [], []
        for i in range(config.runs):
            r = run_multiflow_scenario(
                protocol, degree, config.seed + i, config,
                n_flows=n_flows, n_failures=n_failures,
            )
            ratios.append(r.delivery_ratio)
            worst.append(r.worst_flow_ratio)
            drops.append(float(r.drops_no_route + r.drops_ttl))
        n = len(ratios)
        out[protocol] = {
            "delivery_ratio": sum(ratios) / n,
            "worst_flow_ratio": sum(worst) / n,
            "convergence_drops": sum(drops) / n,
        }
    return out


def extension_transport(
    config: Optional[ExperimentConfig] = None,
    degree: int = 4,
    total_segments: int = 8000,
) -> dict[str, dict[str, float]]:
    """Future-work extension (paper §6): end-to-end reliable transport.

    Measures the transfer-completion stall each protocol's convergence gap
    imposes on a window/timeout transport, versus a failure-free baseline.
    """
    from .extensions import transport_with_baseline

    config = config or ExperimentConfig.quick()
    out: dict[str, dict[str, float]] = {}
    for protocol in config.protocols:
        penalties, retx = [], []
        for i in range(config.runs):
            r = transport_with_baseline(
                protocol, degree, config.seed + i, config, total_segments
            )
            if r.stall_penalty is not None:
                penalties.append(r.stall_penalty)
            retx.append(float(r.stats.retransmissions))
        out[protocol] = {
            "stall_penalty": sum(penalties) / len(penalties) if penalties else float("inf"),
            "retransmissions": sum(retx) / len(retx),
        }
    return out


def overhead_sweep(config: Optional[ExperimentConfig] = None) -> SweepTable:
    """Routing-message overhead during the convergence window vs degree.

    The paper's related work ([28], Zaumen & Garcia-Luna-Aceves) measures
    update counts during convergence; this harness reports the mean number
    of routing messages sent network-wide in the post-failure window.
    """
    config = config or ExperimentConfig.quick()
    return _sweep(
        "Overhead: routing messages in the post-failure window vs degree",
        config,
        lambda p: p.mean_messages,
    )


def ablation_ssld(
    config: Optional[ExperimentConfig] = None, degree: int = 4
) -> dict[str, dict[str, float]]:
    """Sender-side vs receiver-side loop detection.

    The paper models receiver-side discard of looping paths; SSLD filters
    them at the sender, saving messages without changing the routes chosen.
    """
    config = config or ExperimentConfig.quick()
    out: dict[str, dict[str, float]] = {}
    for protocol in ("bgp3", "bgp3-ssld"):
        point = run_point(protocol, degree, config)
        out[protocol] = {
            "messages": point.mean_messages,
            "drops_no_route": point.mean_drops_no_route,
            "drops_ttl": point.mean_drops_ttl,
            "routing_convergence": point.mean_routing_convergence,
        }
    return out


def extension_scale(
    config: Optional[ExperimentConfig] = None,
    sizes: tuple[tuple[int, int], ...] = ((5, 5), (7, 7), (10, 10)),
    degree: int = 4,
    protocols: tuple[str, ...] = ("rip", "dbf", "bgp3"),
) -> dict[tuple[str, int], dict[str, float]]:
    """Larger network sizes (the paper's first stated future-work step).

    Sweeps the mesh side length at fixed degree.  Expected shape: RIP's
    losses stay pinned to its periodic-update clock (network-size
    independent); the alternate-path protocols' behavior depends only on
    local alternates, so their delivery stays high while their network-wide
    convergence time grows with path lengths.
    """
    config = config or ExperimentConfig.quick()
    out: dict[tuple[str, int], dict[str, float]] = {}
    for rows, cols in sizes:
        cfg = config.with_(rows=rows, cols=cols)
        for protocol in protocols:
            point = run_point(protocol, degree, cfg)
            out[(protocol, rows * cols)] = {
                "drops_no_route": point.mean_drops_no_route,
                "delivery_ratio": point.mean_delivery_ratio,
                "routing_convergence": point.mean_routing_convergence,
            }
    return out


def ablation_detection_delay(
    config: Optional[ExperimentConfig] = None,
    degree: int = 6,
    delays: tuple[float, ...] = (0.005, 0.05, 0.5, 2.0),
    protocol: str = "dbf",
) -> dict[float, dict[str, float]]:
    """Failure-detection delay sensitivity.

    The paper fixes link-layer detection at a small constant and argues the
    exact value is immaterial because it sits far below every protocol
    timer.  This ablation verifies that: for an alternate-path protocol on a
    rich mesh, the post-failure loss is just rate x detection_delay plus the
    in-flight packet — until the delay grows to protocol-timer scale.
    """
    config = config or ExperimentConfig.quick()
    out: dict[float, dict[str, float]] = {}
    for delay in delays:
        cfg = config.with_(detection_delay=delay)
        point = run_point(protocol, degree, cfg)
        total = [r.total_drops for r in point.runs]
        out[delay] = {
            "total_drops": sum(total) / len(total),
            "expected_floor": config.rate_pps * delay,
            "forwarding_convergence": point.mean_forwarding_convergence,
        }
    return out


def extension_loop_freedom_cost(
    config: Optional[ExperimentConfig] = None,
    degrees: tuple[int, ...] = (3, 4, 5, 6),
) -> dict[tuple[str, int], dict[str, float]]:
    """DUAL vs DBF: the paper's §6 trade-off, measured.

    DUAL ([6]) buys provable loop freedom by freezing routes during
    diffusing computations; DBF switches instantly but can loop.  Reports
    TTL deaths (loops) and no-route drops (freezes/switch-over gaps) for
    both, per degree.
    """
    config = config or ExperimentConfig.quick()
    out: dict[tuple[str, int], dict[str, float]] = {}
    for protocol in ("dbf", "dual"):
        for degree in degrees:
            point = run_point(protocol, degree, config)
            out[(protocol, degree)] = {
                "ttl": point.mean_drops_ttl,
                "no_route": point.mean_drops_no_route,
                "routing_convergence": point.mean_routing_convergence,
            }
    return out


def extension_fast_reroute(
    config: Optional[ExperimentConfig] = None,
    degrees: tuple[int, ...] = (4, 6),
) -> dict[tuple[str, int], float]:
    """IGP fast reroute (the paper's related work [1]/[27]): SPF with a
    realistic computation throttle, with and without precomputed Loop-Free
    Alternates.  Reports mean stale-route drops (packets that died on the
    dead link or routeless) per failure."""
    config = config or ExperimentConfig.quick()
    out: dict[tuple[str, int], float] = {}
    for protocol in ("spf", "spf-slow", "spf-lfa"):
        for degree in degrees:
            point = run_point(protocol, degree, config)
            stale = [
                r.drops_link_down + r.drops_no_route for r in point.runs
            ]
            out[(protocol, degree)] = sum(stale) / len(stale)
    return out


def extension_flap_damping(
    config: Optional[ExperimentConfig] = None,
    degree: int = 4,
) -> dict[str, dict[str, float]]:
    """Extension: RFC 2439 route flap damping during convergence.

    The paper's introduction cites Mao et al. ([15]): damping mistakes
    convergence-period path exploration for flapping and suppresses the
    routes recovery needs.  Compares BGP-3 with and without damping.
    """
    config = config or ExperimentConfig.quick()
    out: dict[str, dict[str, float]] = {}
    for protocol in ("bgp3", "bgp3-rfd"):
        point = run_point(protocol, degree, config)
        out[protocol] = {
            "delivery_ratio": point.mean_delivery_ratio,
            "drops_no_route": point.mean_drops_no_route,
            "routing_convergence": point.mean_routing_convergence,
        }
    return out


def extension_random_topology(
    config: Optional[ExperimentConfig] = None,
    degrees: tuple[int, ...] = (4, 6),
) -> SweepTable:
    """Future-work extension: the experiment on random regular graphs.

    Cross-checks that the mesh findings (drops fall with degree; RIP worst)
    are not artifacts of the lattice structure.
    """
    from .extensions import run_random_topology_scenario

    config = config or ExperimentConfig.quick()
    table = SweepTable(
        title="Extension: drops (no route) on random regular graphs",
        protocols=config.protocols,
        degrees=degrees,
    )
    for protocol in config.protocols:
        for degree in degrees:
            drops = []
            for i in range(config.runs):
                r = run_random_topology_scenario(
                    protocol, degree, config.seed + i, config
                )
                drops.append(r.drops_no_route)
            table.values[(protocol, degree)] = sum(drops) / len(drops)
    return table
