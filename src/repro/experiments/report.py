"""Plain-text rendering of figure results.

Produces the rows/series the paper reports, ready for EXPERIMENTS.md or
console output.
"""

from __future__ import annotations

from typing import Mapping

from ..metrics.timeseries import BinnedSeries
from .figures import SweepTable

__all__ = [
    "format_sweep_table",
    "format_series_grid",
    "format_ascii_curve",
    "sweep_table_to_csv",
    "series_to_csv",
]


def format_sweep_table(table: SweepTable, precision: int = 1) -> str:
    """Render a SweepTable as a fixed-width text table."""
    header = ["degree"] + list(table.protocols)
    widths = [max(8, len(h) + 2) for h in header]
    lines = [table.title, ""]
    lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("".join("-" * w for w in widths))
    for degree in table.degrees:
        cells = [str(degree)]
        for protocol in table.protocols:
            cells.append(f"{table.value(protocol, degree):.{precision}f}")
        lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series_grid(
    series: Mapping[tuple[str, int], BinnedSeries],
    title: str,
    t_min: float = -5.0,
    t_max: float = 50.0,
    step: float = 5.0,
    precision: int = 1,
) -> str:
    """Render time series (one column per (protocol, degree)) sampled every
    ``step`` seconds relative to the failure instant."""
    keys = sorted(series)
    sample_times = []
    t = t_min
    while t <= t_max + 1e-9:
        sample_times.append(t)
        t += step
    header = ["t(s)"] + [f"{p}/d{d}" for p, d in keys]
    widths = [max(9, len(h) + 2) for h in header]
    lines = [title, ""]
    lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("".join("-" * w for w in widths))
    for t in sample_times:
        cells = [f"{t:.0f}"]
        for key in keys:
            value = series[key].value_at(t)
            cells.append("-" if value is None else f"{value:.{precision}f}")
        lines.append("".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def sweep_table_to_csv(table: SweepTable) -> str:
    """CSV form of a SweepTable (degree column + one column per protocol)."""
    lines = ["degree," + ",".join(table.protocols)]
    for degree in table.degrees:
        cells = [str(degree)] + [
            f"{table.value(p, degree):g}" for p in table.protocols
        ]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def series_to_csv(series: Mapping[tuple[str, int], BinnedSeries]) -> str:
    """CSV of time series: a time column plus one column per (protocol, degree).

    Series must share bin edges (as run_point-aggregated ones do)."""
    keys = sorted(series)
    if not keys:
        return "time\n"
    times = series[keys[0]].times
    for key in keys[1:]:
        if series[key].times != times:
            raise ValueError("series are not aligned")
    header = "time," + ",".join(f"{p}_d{d}" for p, d in keys)
    lines = [header]
    for i, t in enumerate(times):
        cells = [f"{t:g}"] + [f"{series[k].values[i]:g}" for k in keys]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def format_ascii_curve(
    series: BinnedSeries, title: str, width: int = 60, height: int = 12
) -> str:
    """Tiny ASCII plot of one series (examples use it for quick looks)."""
    if not series.values:
        return f"{title}\n(empty series)"
    v_max = max(series.values)
    v_min = min(series.values)
    span = (v_max - v_min) or 1.0
    n = len(series.values)
    # Downsample/expand to `width` columns.
    cols = []
    for x in range(width):
        idx = min(n - 1, int(x * n / width))
        cols.append((series.values[idx] - v_min) / span)
    rows = []
    for y in range(height, -1, -1):
        threshold = y / height
        row = "".join("#" if c >= threshold and c > 0 else " " for c in cols)
        rows.append(row)
    t0, t1 = series.times[0], series.times[-1]
    footer = f"t: {t0:.0f}s .. {t1:.0f}s   y: {v_min:.1f} .. {v_max:.1f}"
    return "\n".join([title, *rows, footer])
