"""Mobility-churn scenarios: the paper's measurement harness on a moving field.

Where :func:`~repro.experiments.scenario.run_scenario` perturbs a static
mesh with a driver-supplied event schedule, this module replaces the mesh
itself: nodes live in a metric space, a mobility model moves them, and the
link schedule falls out of radio range (:class:`~repro.mobility.
MobilityDriver`).  Everything downstream — CBR flow, convergence tracking,
monitors, flight recording, :class:`~repro.experiments.scenario.
ScenarioResult` — is the same harness, so churn runs are directly
comparable to single-failure runs.

The live network is built over the *union* of every link that ever exists
(a network cannot grow links mid-run); links outside the initial
connectivity start down, and protocols are warm-started on the t=0
topology only.
"""

from __future__ import annotations

import os
import random
import time as _time
from typing import Optional

from ..metrics.convergence import (
    ConvergenceTracker,
    NetworkConvergenceWatcher,
    attribute_waves,
)
from ..metrics.counters import DropCounter, MessageCounter
from ..metrics.manet import analyze_manet
from ..metrics.reordering import analyze_reordering
from ..metrics.timeseries import delay_series, throughput_series
from ..mobility import GaussMarkov, ManhattanGrid, MobilityDriver, RandomWaypoint
from ..mobility.base import MobilityModel
from ..net.dynamics import LinkScheduler
from ..net.network import Network
from ..obs.flight import FlightRecorder, build_dump, save_dump
from ..sim.engine import Simulator
from ..sim.rng import RngStreams
from ..sim.tracing import TraceBus
from ..topology.spatial import derive_topology
from ..traffic.cbr import CbrSource
from ..traffic.flows import FlowSpec
from ..traffic.sink import PacketSink
from .config import ChurnConfig, ExperimentConfig
from .scenario import ScenarioResult, TopologyEventOutcome, make_protocol_factory

__all__ = ["make_mobility_model", "run_churn_scenario"]


def make_mobility_model(churn: ChurnConfig, rng: random.Random) -> MobilityModel:
    """Instantiate the configured mobility model from one RNG stream."""
    if churn.model == "waypoint":
        return RandomWaypoint(
            churn.n_nodes,
            churn.area,
            speed=(churn.speed_min, churn.speed_max),
            pause=churn.pause,
            rng=rng,
        )
    if churn.model == "gauss-markov":
        return GaussMarkov(
            churn.n_nodes,
            churn.area,
            mean_speed=churn.mean_speed,
            alpha=churn.alpha,
            rng=rng,
        )
    if churn.model == "manhattan":
        return ManhattanGrid(
            churn.n_nodes,
            churn.area,
            blocks=churn.blocks,
            speed=(churn.speed_min, churn.speed_max),
            rng=rng,
        )
    raise ValueError(f"unknown mobility model {churn.model!r}")


def _pick_flow(
    rng: random.Random, schedule, n_nodes: int
) -> tuple[int, int]:
    """Deterministic sender/receiver pair, connected at t=0."""
    pairs = [
        (a, b)
        for a in range(n_nodes)
        for b in range(a + 1, n_nodes)
        if schedule.connected_at_start(a, b)
    ]
    if not pairs:
        raise ValueError(
            "no node pair is connected at t=0; increase radio_range or density"
        )
    return rng.choice(pairs)


def run_churn_scenario(
    protocol: str,
    seed: int,
    config: ExperimentConfig,
    monitors: Optional[object] = None,
    recorder: Optional[FlightRecorder] = None,
    dump_dir: Optional[str] = None,
    live_log=None,
) -> ScenarioResult:
    """Run one mobility-churn experiment; ``config.churn`` must be set.

    Movement starts generating link events at ``config.fail_time`` (the
    field is static during warm-up and steady state, like the paper's
    pre-failure phase) and the run ends at ``config.end_time``.  The result
    reports ``degree=0`` — a spatial field has no fixed mesh degree.

    ``live_log`` streams phase-boundary heartbeats exactly like
    :func:`~repro.experiments.scenario.run_scenario`: records are written
    strictly between ``sim.run`` calls, so metrics are byte-identical with
    the log on or off.
    """
    if config.churn is None:
        raise ValueError("run_churn_scenario requires config.churn")
    churn = config.churn
    if recorder is None and dump_dir is not None:
        recorder = FlightRecorder()
    if monitors is None and config.validate:
        from ..validation.monitors import MonitorSuite

        monitors = MonitorSuite()

    from ..obs.live import open_live_log

    log, owns_log = open_live_log(
        live_log,
        run="churn",
        meta={
            "protocol": protocol,
            "seed": seed,
            "model": churn.model,
            "n_nodes": churn.n_nodes,
        },
    )
    log_started = _time.perf_counter()

    def beat(phase: str) -> None:
        if log is not None:
            log.heartbeat(
                shard=0,
                clock=sim.now,
                events=sim.events_processed,
                wall_s=_time.perf_counter() - log_started,
                phase=phase,
            )

    rng_streams = RngStreams(seed)
    model = make_mobility_model(churn, rng_streams.stream("mobility"))
    driver = MobilityDriver(
        model,
        radio_range=churn.radio_range,
        step=churn.step,
        start=config.fail_time,
    )
    end_at = config.end_time
    # Movement (and thus link churn) stops ``settle_time`` seconds early so
    # the final stretch of the run can quiesce for oracle comparison.
    schedule = driver.build(max(config.fail_time, end_at - churn.settle_time))
    sender, receiver = _pick_flow(
        rng_streams.stream("scenario"), schedule, churn.n_nodes
    )
    initial_topo = derive_topology(
        schedule.initial_positions, churn.radio_range, name="mobility-t0"
    )
    pre_path = initial_topo.shortest_path(sender, receiver)
    assert pre_path is not None, "flow endpoints are t=0 connected"

    sim = Simulator(queue=config.event_queue)
    bus = TraceBus(keep_routes=False, keep_links=False)
    if recorder is not None:
        recorder.attach(bus)
    network = Network(
        sim,
        schedule.topology,
        bus,
        queue_capacity=config.queue_capacity,
        record_paths=config.record_paths,
        record_forwards=monitors is not None or recorder is not None,
        priority_control=config.prioritize_control,
    )
    factory = make_protocol_factory(
        protocol, network, rng_streams, initial_topo, config
    )
    network.attach_protocols(factory)
    scheduler = LinkScheduler(
        sim, network, detection_delay=config.detection_delay
    )
    scheduler.take_down_initially(schedule.initially_down)
    for node in network.iter_nodes():
        assert node.protocol is not None
        node.protocol.warm_start(initial_topo)
    scheduled = scheduler.load(schedule.events)
    detect_times = [
        e.time
        + (
            e.detection_delay
            if e.detection_delay is not None
            else config.detection_delay
        )
        for e in scheduled
    ]
    first_at = scheduled[0].time if scheduled else config.fail_time
    first_detect = (
        detect_times[0] if detect_times else config.fail_time + config.detection_delay
    )

    tracker = ConvergenceTracker(bus, dest=receiver, src=sender)
    tracker.seed_from_network(network)
    net_watcher = NetworkConvergenceWatcher(bus)
    drop_counter = DropCounter(bus, window_start=first_at)
    message_counter = MessageCounter(bus, window_start=first_at)
    # Whole-run overhead for the MANET triple (NRL is not windowed).
    overhead_counter = MessageCounter(bus)

    sink = PacketSink(flow_id=1, ttl_at_send=config.ttl)
    network.node(receiver).attach_app(sink)
    flow = FlowSpec(
        flow_id=1,
        src=sender,
        dst=receiver,
        rate_pps=config.rate_pps,
        start=config.traffic_start,
        stop=end_at,
        packet_bytes=config.packet_bytes,
        ttl=config.ttl,
    )
    source = CbrSource(sim, network, flow)
    source.start()

    if monitors is not None:
        from ..validation.monitors import RunContext, settle_margin_for

        monitors.attach(
            RunContext(
                sim=sim,
                network=network,
                bus=bus,
                topology=schedule.topology,
                protocol=protocol,
                failed_links=tuple(
                    sorted({e.link_key for e in scheduled if e.kind == "fail"})
                ),
                detect_time=first_detect,
                end_time=end_at,
                infinity=(
                    config.dv_infinity
                    if protocol in ("rip", "rip-hd", "dbf")
                    else None
                ),
                settle_margin=settle_margin_for(protocol),
                active_dests=frozenset({receiver}),
                # Link restores legitimately leave reactive routes longer
                # than optimal (a working route is never re-discovered), so
                # churn runs check validity/loop-freedom, not exact costs.
                reactive_strict=False,
            )
        )

    # Split at the same instants run_scenario uses; repeated run(until=...)
    # calls are contiguous (pinned by the engine tests), so the event order
    # matches a single run(until=end_at) and the beats cost nothing.
    sim.run(until=min(first_at, end_at))
    beat("steady")
    sim.run(until=min(first_detect, end_at))
    beat("churn")
    sim.run(until=end_at)
    beat("settle")

    deliveries = sink.stats.deliveries
    waves = attribute_waves(detect_times, net_watcher.change_times, end_at)
    outcomes = tuple(
        TopologyEventOutcome(
            kind=e.kind,
            link=e.link_key,
            time=e.time,
            detect_time=dt,
            wave_start=w[0],
            wave_end=w[1],
        )
        for e, dt, w in zip(scheduled, detect_times, waves)
    )
    result = ScenarioResult(
        protocol=protocol,
        degree=0,
        seed=seed,
        sender=sender,
        receiver=receiver,
        initial_path=tuple(pre_path),
        expected_final_path=None,
        events=outcomes,
        sent=source.sent,
        delivered=sink.stats.delivered,
        drops_no_route=drop_counter.no_route,
        drops_ttl=drop_counter.ttl_expired,
        drops_link_down=drop_counter.link_down,
        drops_queue=drop_counter.queue_overflow,
        routing_convergence=net_watcher.convergence_time(first_detect),
        destination_convergence=tracker.routing_convergence_time(first_detect),
        forwarding_convergence=tracker.forwarding_convergence_delay(first_detect),
        converged_to_expected=False,
        transient_path_count=len(tracker.transient_paths(first_at)),
        throughput=throughput_series(
            deliveries, config.traffic_start, end_at, origin=first_at
        ),
        delay=delay_series(
            deliveries, config.traffic_start, end_at, origin=first_at
        ),
        messages=message_counter.messages,
        withdrawals=message_counter.withdrawals,
        reordering=analyze_reordering(deliveries),
        manet=analyze_manet(
            source.sent,
            deliveries,
            overhead_counter.messages,
            control_bytes=overhead_counter.bytes_sent,
        ),
    )
    if monitors is not None:
        result.violations = tuple(str(v) for v in monitors.finalize())
        result.monitor_skips = dict(monitors.skips)
    if result.violations and recorder is not None and dump_dir is not None:
        os.makedirs(dump_dir, exist_ok=True)
        dump = build_dump(
            recorder,
            meta={
                "protocol": protocol,
                "seed": seed,
                "sender": sender,
                "receiver": receiver,
                "mobility_model": churn.model,
                "n_nodes": churn.n_nodes,
                "radio_range": churn.radio_range,
                "end_time": end_at,
                "events": [[e.kind, e.a, e.b, e.time] for e in scheduled],
            },
            violations=result.violations,
            counters=bus.counters.as_dict(),
        )
        path = os.path.join(dump_dir, f"flight-churn-{protocol}-s{seed}.json")
        save_dump(dump, path)
        result.dump_path = path
    if recorder is not None:
        recorder.close()
    drop_counter.close()
    message_counter.close()
    overhead_counter.close()
    if log is not None:
        for finding in result.violations:
            log.violation(str(finding))
        log.end(ok=not result.violations)
        if owns_log:
            log.close()
    return result
