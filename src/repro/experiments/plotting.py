"""Dependency-free SVG charts for the reproduced figures.

The paper's figures are simple line charts (metric vs node degree, or metric
vs time).  This module renders exactly those, as standalone SVG strings,
with no plotting dependency — suitable for headless CI and for dropping into
the repository's documentation.

Entry points:

* :func:`line_chart` — generic multi-series chart;
* :func:`sweep_chart` — a :class:`~repro.experiments.figures.SweepTable`
  (metric vs degree, one line per protocol) — Figures 3, 4, 6;
* :func:`series_chart` — time series per (protocol, degree) — Figures 5, 7;
* :func:`save_svg` — write to disk.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence
from xml.sax.saxutils import escape

from ..metrics.timeseries import BinnedSeries
from .figures import SweepTable

__all__ = ["line_chart", "sweep_chart", "series_chart", "save_svg"]

#: Color cycle (colorblind-safe-ish defaults).
_COLORS = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # magenta
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#000000",  # black
)

_DASHES = ("", "6,3", "2,2", "8,3,2,3", "1,3", "10,2", "4,4")


def _nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Human-friendly axis tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(1, target)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = magnitude * mult
        if span / step <= target + 1:
            break
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str,
    xlabel: str,
    ylabel: str,
    width: int = 640,
    height: int = 400,
    y_min: Optional[float] = None,
) -> str:
    """Render named (x, y) series as an SVG line chart with legend."""
    margin_l, margin_r, margin_t, margin_b = 64, 150, 40, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi <= y_lo:
        y_hi = y_lo + 1

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    parts.append(
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{escape(title)}</text>'
    )

    # Axes frame.
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>'
    )
    # Ticks and gridlines.
    for t in _nice_ticks(x_lo, x_hi):
        x = sx(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
            f'y2="{margin_t + plot_h}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle">{_fmt(t)}</text>'
        )
    for t in _nice_ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(t)}</text>'
        )
    # Axis labels.
    parts.append(
        f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 10}" '
        f'text-anchor="middle">{escape(xlabel)}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_t + plot_h / 2:.0f})">'
        f"{escape(ylabel)}</text>"
    )

    # Series.
    legend_y = margin_t + 8
    for idx, (label, pts) in enumerate(series.items()):
        color = _COLORS[idx % len(_COLORS)]
        dash = _DASHES[idx % len(_DASHES)]
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"{dash_attr}/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.4" '
                f'fill="{color}"/>'
            )
        # Legend entry.
        lx = margin_l + plot_w + 12
        parts.append(
            f'<line x1="{lx}" y1="{legend_y}" x2="{lx + 22}" y2="{legend_y}" '
            f'stroke="{color}" stroke-width="1.8"{dash_attr}/>'
        )
        parts.append(
            f'<text x="{lx + 28}" y="{legend_y + 4}">{escape(label)}</text>'
        )
        legend_y += 18

    parts.append("</svg>")
    return "\n".join(parts)


def sweep_chart(table: SweepTable, ylabel: str, title: Optional[str] = None) -> str:
    """Figure 3/4/6-style chart: one line per protocol, degree on the x axis."""
    series = {
        protocol: [(float(d), v) for d, v in table.series(protocol)]
        for protocol in table.protocols
    }
    return line_chart(
        series,
        title=title or table.title,
        xlabel="node degree",
        ylabel=ylabel,
        y_min=0.0,
    )


def series_chart(
    series: Mapping[tuple[str, int], BinnedSeries],
    title: str,
    ylabel: str,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> str:
    """Figure 5/7-style chart: one line per (protocol, degree) time series."""
    named: dict[str, list[tuple[float, float]]] = {}
    for (protocol, degree), s in sorted(series.items()):
        pts = [
            (t, v)
            for t, v in zip(s.times, s.values)
            if (t_min is None or t >= t_min) and (t_max is None or t <= t_max)
        ]
        if pts:
            named[f"{protocol} d={degree}"] = pts
    return line_chart(
        named,
        title=title,
        xlabel="time since failure (s)",
        ylabel=ylabel,
        y_min=0.0,
    )


def save_svg(svg: str, path: str) -> None:
    """Write an SVG string to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(svg)
        if not svg.endswith("\n"):
            f.write("\n")
