"""Future-work experiments (paper §6), implemented.

The paper closes with three extensions it leaves open; all three are built
here on the same substrate and harness:

* :func:`run_multiflow_scenario` — multiple sender/receiver pairs and
  multiple (optionally overlapping-in-time) link failures;
* :func:`run_transport_scenario` — end-to-end reliable-transport (TCP-like)
  performance through a convergence event;
* :func:`run_random_topology_scenario` — the single-flow experiment on a
  connected random regular graph, to check that the regular-mesh results are
  not lattice artifacts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..metrics.counters import DropCounter
from ..net.dynamics import LinkScheduler
from ..net.network import Network
from ..sim.engine import Simulator
from ..sim.rng import RngStreams
from ..sim.tracing import TraceBus
from ..topology.generators import attach_host, random_regular
from ..topology.graph import Topology
from ..topology.mesh import regular_mesh
from ..traffic.cbr import CbrSource
from ..traffic.flows import FlowSpec
from ..traffic.sink import PacketSink
from ..traffic.transport import ReliableReceiver, ReliableSender, TransportConfig, TransportStats
from .config import ExperimentConfig
from .scenario import make_protocol_factory

__all__ = [
    "FlowOutcome",
    "MultiFlowResult",
    "run_multiflow_scenario",
    "TransportResult",
    "run_transport_scenario",
    "transport_with_baseline",
    "NodeFailureResult",
    "run_node_failure_scenario",
    "RepairResult",
    "run_repair_scenario",
    "run_random_topology_scenario",
]


# --------------------------------------------------------------- multi-flow


@dataclass
class FlowOutcome:
    """Per-flow delivery in a multi-flow run."""

    flow_id: int
    sender: int
    receiver: int
    sent: int
    delivered: int

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


@dataclass
class MultiFlowResult:
    """Outcome of a multi-flow, multi-failure experiment."""

    protocol: str
    degree: int
    seed: int
    failed_links: list[tuple[int, int]]
    flows: list[FlowOutcome] = field(default_factory=list)
    drops_no_route: int = 0
    drops_ttl: int = 0

    @property
    def total_sent(self) -> int:
        return sum(f.sent for f in self.flows)

    @property
    def total_delivered(self) -> int:
        return sum(f.delivered for f in self.flows)

    @property
    def delivery_ratio(self) -> float:
        return self.total_delivered / self.total_sent if self.total_sent else 0.0

    @property
    def worst_flow_ratio(self) -> float:
        return min((f.delivery_ratio for f in self.flows), default=0.0)


def _build_network(
    protocol: str,
    topo: Topology,
    rng_streams: RngStreams,
    config: ExperimentConfig,
) -> tuple[Simulator, Network]:
    sim = Simulator(queue=config.event_queue)
    bus = TraceBus(keep_routes=False)
    network = Network(sim, topo, bus, queue_capacity=config.queue_capacity)
    network.attach_protocols(
        make_protocol_factory(protocol, network, rng_streams, topo, config)
    )
    for node in network.iter_nodes():
        assert node.protocol is not None
        node.protocol.warm_start(topo)
    return sim, network


def run_multiflow_scenario(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    n_flows: int = 3,
    n_failures: int = 2,
    failure_spacing: float = 5.0,
) -> MultiFlowResult:
    """Several concurrent flows, several staggered on-path link failures.

    Flow i's sender attaches to a random first-row router and its receiver to
    a random last-row router (distinct hosts).  The first failure hits flow
    0's path at ``config.fail_time``; each subsequent failure hits a later
    flow's (current pre-failure) path ``failure_spacing`` seconds apart, so
    convergence periods overlap.
    """
    config = config or ExperimentConfig.quick()
    if n_flows < 1 or n_failures < 1:
        raise ValueError("need at least one flow and one failure")
    if n_failures > n_flows:
        raise ValueError("at most one failure per flow's path")
    rng_streams = RngStreams(seed)
    rng = rng_streams.stream("multiflow")

    topo = regular_mesh(config.rows, config.cols, degree)
    pairs: list[tuple[int, int]] = []
    for _ in range(n_flows):
        sender = attach_host(topo, rng.randrange(0, config.cols))
        receiver = attach_host(
            topo, (config.rows - 1) * config.cols + rng.randrange(0, config.cols)
        )
        pairs.append((sender, receiver))

    # Choose one mesh link on each targeted flow's shortest path; reject
    # duplicates so failures are distinct.
    failed: list[tuple[int, int]] = []
    for i in range(n_failures):
        sender, receiver = pairs[i]
        path = topo.shortest_path(sender, receiver)
        assert path is not None
        candidates = [
            (path[j], path[j + 1])
            for j in range(1, len(path) - 2)
            if (min(path[j], path[j + 1]), max(path[j], path[j + 1]))
            not in {(min(a, b), max(a, b)) for a, b in failed}
        ]
        if candidates:
            failed.append(rng.choice(candidates))

    sim, network = _build_network(protocol, topo, rng_streams, config)
    drop_counter = DropCounter(network.bus, window_start=config.fail_time)

    sinks: list[PacketSink] = []
    sources: list[CbrSource] = []
    for flow_id, (sender, receiver) in enumerate(pairs, start=1):
        sink = PacketSink(flow_id=flow_id, ttl_at_send=config.ttl)
        network.node(receiver).attach_app(sink)
        sinks.append(sink)
        spec = FlowSpec(
            flow_id=flow_id,
            src=sender,
            dst=receiver,
            rate_pps=config.rate_pps,
            start=config.traffic_start,
            stop=config.end_time,
            packet_bytes=config.packet_bytes,
            ttl=config.ttl,
        )
        source = CbrSource(sim, network, spec)
        source.start()
        sources.append(source)

    injector = LinkScheduler(sim, network, detection_delay=config.detection_delay)
    for i, (a, b) in enumerate(failed):
        injector.fail_link(a, b, at=config.fail_time + i * failure_spacing)

    sim.run(until=config.end_time)

    result = MultiFlowResult(
        protocol=protocol,
        degree=degree,
        seed=seed,
        failed_links=failed,
        drops_no_route=drop_counter.no_route,
        drops_ttl=drop_counter.ttl_expired,
    )
    for flow_id, ((sender, receiver), source, sink) in enumerate(
        zip(pairs, sources, sinks), start=1
    ):
        result.flows.append(
            FlowOutcome(
                flow_id=flow_id,
                sender=sender,
                receiver=receiver,
                sent=source.sent,
                delivered=sink.stats.delivered,
            )
        )
    return result


# ---------------------------------------------------------------- transport


@dataclass
class TransportResult:
    """End-to-end reliable-transfer outcome through a convergence event."""

    protocol: str
    degree: int
    seed: int
    failed_link: tuple[int, int]
    stats: TransportStats
    #: Transfer time for the same byte count on the unbroken network.
    baseline_completion: Optional[float] = None

    @property
    def stall_penalty(self) -> Optional[float]:
        """Extra seconds versus the failure-free baseline."""
        if self.stats.completed_at is None or self.baseline_completion is None:
            return None
        return self.stats.completed_at - self.baseline_completion


def run_transport_scenario(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    total_segments: int = 2000,
    transport: Optional[TransportConfig] = None,
    inject_failure: bool = True,
) -> TransportResult:
    """One reliable transfer across the mesh, with one on-path link failure.

    The transfer starts at ``config.traffic_start``; the failure fires at
    ``config.fail_time`` like the paper's CBR experiment.  The run lasts
    until the transfer completes (or the configured horizon expires).
    """
    config = config or ExperimentConfig.quick()
    transport = transport or TransportConfig()
    rng_streams = RngStreams(seed)
    rng = rng_streams.stream("scenario")

    topo = regular_mesh(config.rows, config.cols, degree)
    sender = attach_host(topo, rng.randrange(0, config.cols))
    receiver = attach_host(
        topo, (config.rows - 1) * config.cols + rng.randrange(0, config.cols)
    )
    path = topo.shortest_path(sender, receiver)
    assert path is not None
    mesh_edges = [
        (path[i], path[i + 1])
        for i in range(1, len(path) - 2)
    ]
    failed = rng.choice(mesh_edges)

    sim, network = _build_network(protocol, topo, rng_streams, config)
    ReliableReceiver(network, receiver, sender, flow_id=1, config=transport)
    tx = ReliableSender(
        sim, network, sender, receiver, flow_id=1,
        total_segments=total_segments, config=transport,
    )
    sim.schedule_at(config.traffic_start, tx.start)
    if inject_failure:
        injector = LinkScheduler(sim, network, detection_delay=config.detection_delay)
        injector.fail_link(failed[0], failed[1], at=config.fail_time)

    horizon = config.end_time + 120.0
    while sim.now < horizon and not tx.done:
        sim.run(until=min(horizon, sim.now + 10.0))
    return TransportResult(
        protocol=protocol,
        degree=degree,
        seed=seed,
        failed_link=failed,
        stats=tx.stats,
    )


def transport_with_baseline(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    total_segments: int = 2000,
    transport: Optional[TransportConfig] = None,
) -> TransportResult:
    """Failure run plus a failure-free baseline for the stall penalty."""
    result = run_transport_scenario(
        protocol, degree, seed, config, total_segments, transport, inject_failure=True
    )
    baseline = run_transport_scenario(
        protocol, degree, seed, config, total_segments, transport, inject_failure=False
    )
    result.baseline_completion = baseline.stats.completed_at
    return result


# -------------------------------------------------------------------- repair


@dataclass
class RepairResult:
    """Outcome of a fail-then-repair cycle."""

    protocol: str
    degree: int
    seed: int
    failed_link: tuple[int, int]
    sent: int
    delivered: int
    drops_total: int
    #: Seconds after the repaired link is re-detected until the
    #: sender->receiver path is again of pre-failure (shortest) length
    #: (None = not within the window).  Tie-keeping protocols (RIP, DUAL)
    #: legitimately settle on an equal-cost path other than the original.
    restoration_convergence: Optional[float]
    back_on_shortest_path: bool

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


def run_repair_scenario(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    repair_after: float = 20.0,
) -> RepairResult:
    """Fail a link on the live path, then bring it back.

    Measures the *restoration* side of convergence the paper leaves open:
    after repair, routing should migrate back to the original (shorter)
    path; the restoration convergence time is how long that takes once the
    endpoints re-detect the link.
    """
    from ..metrics.convergence import ConvergenceTracker

    config = config or ExperimentConfig.quick()
    rng_streams = RngStreams(seed)
    rng = rng_streams.stream("scenario")

    topo = regular_mesh(config.rows, config.cols, degree)
    sender = attach_host(topo, rng.randrange(0, config.cols))
    receiver = attach_host(
        topo, (config.rows - 1) * config.cols + rng.randrange(0, config.cols)
    )
    pre_path = topo.shortest_path(sender, receiver)
    assert pre_path is not None
    mesh_edges = [
        (pre_path[i], pre_path[i + 1]) for i in range(1, len(pre_path) - 2)
    ]
    failed = rng.choice(mesh_edges)

    sim, network = _build_network(protocol, topo, rng_streams, config)
    tracker = ConvergenceTracker(network.bus, dest=receiver, src=sender)
    tracker.seed_from_network(network)
    drop_counter = DropCounter(network.bus, window_start=config.fail_time)

    sink = PacketSink(flow_id=1, ttl_at_send=config.ttl)
    network.node(receiver).attach_app(sink)
    end_at = config.fail_time + repair_after + config.post_fail_window
    source = CbrSource(
        sim,
        network,
        FlowSpec(
            flow_id=1,
            src=sender,
            dst=receiver,
            rate_pps=config.rate_pps,
            start=config.traffic_start,
            stop=end_at,
            packet_bytes=config.packet_bytes,
            ttl=config.ttl,
        ),
    )
    source.start()
    injector = LinkScheduler(sim, network, detection_delay=config.detection_delay)
    injector.fail_link(failed[0], failed[1], at=config.fail_time)
    repair_at = config.fail_time + repair_after
    injector.restore_link(failed[0], failed[1], at=repair_at)
    sim.run(until=end_at)

    redetect_at = repair_at + config.detection_delay
    # When did the walked path regain its pre-failure (shortest) length?
    shortest_len = len(pre_path)
    restoration: Optional[float] = None
    for snap in tracker.snapshots:
        if (
            snap.time >= redetect_at
            and snap.complete
            and len(snap.path) <= shortest_len
        ):
            restoration = snap.time - redetect_at
            break
    final = tracker.final_path
    back = (
        final is not None and final.complete and len(final.path) <= shortest_len
    )
    # Walked-path state at the very end may predate redetection entirely if
    # the detour was already shortest-length (nothing to restore).
    if restoration is None and back and tracker.snapshots:
        last_change = tracker.snapshots[-1].time
        if last_change < redetect_at:
            restoration = 0.0
    return RepairResult(
        protocol=protocol,
        degree=degree,
        seed=seed,
        failed_link=failed,
        sent=source.sent,
        delivered=sink.stats.delivered,
        drops_total=drop_counter.total,
        restoration_convergence=restoration,
        back_on_shortest_path=back,
    )


# -------------------------------------------------------------- node failure


@dataclass
class NodeFailureResult:
    """Outcome of a whole-router failure on the flow's path."""

    protocol: str
    degree: int
    seed: int
    failed_node: int
    sent: int
    delivered: int
    drops_no_route: int
    drops_ttl: int
    recovered: bool

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


def run_node_failure_scenario(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
) -> NodeFailureResult:
    """Fail an entire router on the pre-failure path (related work [28]'s
    other failure mode).  A random interior path router crashes — all its
    links die at once, a much larger perturbation than a single link."""
    config = config or ExperimentConfig.quick()
    rng_streams = RngStreams(seed)
    rng = rng_streams.stream("scenario")

    topo = regular_mesh(config.rows, config.cols, degree)
    sender = attach_host(topo, rng.randrange(0, config.cols))
    receiver = attach_host(
        topo, (config.rows - 1) * config.cols + rng.randrange(0, config.cols)
    )
    path = topo.shortest_path(sender, receiver)
    assert path is not None
    # Interior path routers: exclude the hosts and their access routers (a
    # crash there disconnects the flow irrecoverably).
    candidates = path[2:-2]
    if not candidates:
        raise ValueError("path too short for an interior node failure")
    failed_node = rng.choice(candidates)

    sim, network = _build_network(protocol, topo, rng_streams, config)
    drop_counter = DropCounter(network.bus, window_start=config.fail_time)
    sink = PacketSink(flow_id=1, ttl_at_send=config.ttl)
    network.node(receiver).attach_app(sink)
    source = CbrSource(
        sim,
        network,
        FlowSpec(
            flow_id=1,
            src=sender,
            dst=receiver,
            rate_pps=config.rate_pps,
            start=config.traffic_start,
            stop=config.end_time,
            packet_bytes=config.packet_bytes,
            ttl=config.ttl,
        ),
    )
    source.start()
    injector = LinkScheduler(sim, network, detection_delay=config.detection_delay)
    injector.fail_node(failed_node, at=config.fail_time)
    sim.run(until=config.end_time)

    # Recovered = traffic flowing at full rate in the final five seconds.
    tail = [
        d for d in sink.stats.deliveries if d.time >= config.end_time - 5.0
    ]
    recovered = len(tail) >= 0.8 * config.rate_pps * 5.0
    return NodeFailureResult(
        protocol=protocol,
        degree=degree,
        seed=seed,
        failed_node=failed_node,
        sent=source.sent,
        delivered=sink.stats.delivered,
        drops_no_route=drop_counter.no_route,
        drops_ttl=drop_counter.ttl_expired,
        recovered=recovered,
    )


# ----------------------------------------------------------- random topology


def run_random_topology_scenario(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    n_nodes: int = 49,
):
    """The paper's experiment on a connected random ``degree``-regular graph.

    Returns the same :class:`~repro.experiments.scenario.ScenarioResult`
    shape as the mesh experiment, so results are directly comparable; used to
    check that the degree findings are not lattice artifacts.
    """
    from .scenario import (  # local import to avoid cycle noise
        ScenarioResult,
        TopologyEventOutcome,
    )
    from ..metrics.convergence import ConvergenceTracker, NetworkConvergenceWatcher
    from ..metrics.counters import MessageCounter
    from ..metrics.timeseries import delay_series, throughput_series

    config = config or ExperimentConfig.quick()
    rng_streams = RngStreams(seed)
    rng = rng_streams.stream("scenario")

    if (n_nodes * degree) % 2 != 0:
        n_nodes += 1  # a degree-regular graph needs an even degree sum
    topo = random_regular(n_nodes, degree, seed=seed)
    routers = sorted(topo.nodes)
    sender_router = rng.choice(routers)
    receiver_router = rng.choice([r for r in routers if r != sender_router])
    sender = attach_host(topo, sender_router)
    receiver = attach_host(topo, receiver_router)
    pre_path = topo.shortest_path(sender, receiver)
    assert pre_path is not None
    mesh_edges = [
        (pre_path[i], pre_path[i + 1]) for i in range(1, len(pre_path) - 2)
    ]
    if not mesh_edges:
        # Adjacent routers: the only on-path mesh link is between them.
        mesh_edges = [(pre_path[1], pre_path[2])]
    failed = rng.choice(mesh_edges)
    expected_final = topo.shortest_path(sender, receiver, exclude_link=failed)

    sim, network = _build_network(protocol, topo, rng_streams, config)
    tracker = ConvergenceTracker(network.bus, dest=receiver, src=sender)
    tracker.seed_from_network(network)
    net_watcher = NetworkConvergenceWatcher(network.bus)
    drop_counter = DropCounter(network.bus, window_start=config.fail_time)
    message_counter = MessageCounter(network.bus, window_start=config.fail_time)

    sink = PacketSink(flow_id=1, ttl_at_send=config.ttl)
    network.node(receiver).attach_app(sink)
    source = CbrSource(
        sim,
        network,
        FlowSpec(
            flow_id=1,
            src=sender,
            dst=receiver,
            rate_pps=config.rate_pps,
            start=config.traffic_start,
            stop=config.end_time,
            packet_bytes=config.packet_bytes,
            ttl=config.ttl,
        ),
    )
    source.start()
    injector = LinkScheduler(sim, network, detection_delay=config.detection_delay)
    injector.fail_link(failed[0], failed[1], at=config.fail_time)
    sim.run(until=config.end_time)

    detect_at = config.fail_time + config.detection_delay
    deliveries = sink.stats.deliveries
    return ScenarioResult(
        protocol=protocol,
        degree=degree,
        seed=seed,
        sender=sender,
        receiver=receiver,
        initial_path=tuple(pre_path),
        expected_final_path=tuple(expected_final) if expected_final else None,
        events=(
            TopologyEventOutcome(
                kind="fail",
                link=(min(failed), max(failed)),
                time=config.fail_time,
                detect_time=detect_at,
            ),
        ),
        sent=source.sent,
        delivered=sink.stats.delivered,
        drops_no_route=drop_counter.no_route,
        drops_ttl=drop_counter.ttl_expired,
        drops_link_down=drop_counter.link_down,
        drops_queue=drop_counter.queue_overflow,
        routing_convergence=net_watcher.convergence_time(detect_at),
        destination_convergence=tracker.routing_convergence_time(detect_at),
        forwarding_convergence=tracker.forwarding_convergence_delay(detect_at),
        converged_to_expected=(
            tracker.converged_to(tuple(expected_final)) if expected_final else False
        ),
        transient_path_count=len(tracker.transient_paths(config.fail_time)),
        throughput=throughput_series(
            deliveries, config.traffic_start, config.end_time, origin=config.fail_time
        ),
        delay=delay_series(
            deliveries, config.traffic_start, config.end_time, origin=config.fail_time
        ),
        messages=message_counter.messages,
        withdrawals=message_counter.withdrawals,
    )
