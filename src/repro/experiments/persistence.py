"""Result persistence: save/load experiment outcomes as JSON.

Paper-scale sweeps take minutes; this module lets the harness checkpoint
results (`save_points`) and reload them for later analysis or plotting
(`load_points`) without re-simulating.  The format is plain JSON — stable,
diff-able, and readable outside Python.

Only aggregate-relevant fields are persisted (scalar measurements plus the
throughput/delay series); per-packet traces and loop reports are run-time
artifacts and are not serialized.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..metrics.reordering import ReorderingReport
from ..metrics.timeseries import BinnedSeries
from .runner import PointResult
from .scenario import ScenarioResult

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "save_points",
    "load_points",
]

_FORMAT_VERSION = 1


def _series_to_dict(series: BinnedSeries | None) -> dict | None:
    if series is None:
        return None
    return {"times": list(series.times), "values": list(series.values)}


def _series_from_dict(data: Mapping | None) -> BinnedSeries | None:
    if data is None:
        return None
    return BinnedSeries(times=tuple(data["times"]), values=tuple(data["values"]))


def scenario_to_dict(result: ScenarioResult) -> dict:
    """JSON-ready representation of one run's measurements."""
    return {
        "protocol": result.protocol,
        "degree": result.degree,
        "seed": result.seed,
        "sender": result.sender,
        "receiver": result.receiver,
        "failed_link": list(result.failed_link),
        "pre_failure_path": list(result.pre_failure_path),
        "expected_final_path": (
            list(result.expected_final_path) if result.expected_final_path else None
        ),
        "sent": result.sent,
        "delivered": result.delivered,
        "drops_no_route": result.drops_no_route,
        "drops_ttl": result.drops_ttl,
        "drops_link_down": result.drops_link_down,
        "drops_queue": result.drops_queue,
        "routing_convergence": result.routing_convergence,
        "destination_convergence": result.destination_convergence,
        "forwarding_convergence": result.forwarding_convergence,
        "converged_to_expected": result.converged_to_expected,
        "transient_path_count": result.transient_path_count,
        "messages": result.messages,
        "withdrawals": result.withdrawals,
        "violations": list(result.violations),
        "throughput": _series_to_dict(result.throughput),
        "delay": _series_to_dict(result.delay),
        "reordering": (
            {
                "delivered": result.reordering.delivered,
                "late_packets": result.reordering.late_packets,
                "max_displacement": result.reordering.max_displacement,
                "episodes": result.reordering.episodes,
            }
            if result.reordering
            else None
        ),
    }


def scenario_from_dict(data: Mapping[str, Any]) -> ScenarioResult:
    """Inverse of :func:`scenario_to_dict`."""
    reordering = None
    if data.get("reordering"):
        r = data["reordering"]
        reordering = ReorderingReport(
            delivered=r["delivered"],
            late_packets=r["late_packets"],
            max_displacement=r["max_displacement"],
            episodes=r["episodes"],
        )
    return ScenarioResult(
        protocol=data["protocol"],
        degree=data["degree"],
        seed=data["seed"],
        sender=data["sender"],
        receiver=data["receiver"],
        failed_link=tuple(data["failed_link"]),
        pre_failure_path=tuple(data["pre_failure_path"]),
        expected_final_path=(
            tuple(data["expected_final_path"])
            if data.get("expected_final_path")
            else None
        ),
        sent=data["sent"],
        delivered=data["delivered"],
        drops_no_route=data["drops_no_route"],
        drops_ttl=data["drops_ttl"],
        drops_link_down=data["drops_link_down"],
        drops_queue=data["drops_queue"],
        routing_convergence=data["routing_convergence"],
        destination_convergence=data.get("destination_convergence", 0.0),
        forwarding_convergence=data["forwarding_convergence"],
        converged_to_expected=data["converged_to_expected"],
        transient_path_count=data["transient_path_count"],
        violations=tuple(data.get("violations", ())),
        throughput=_series_from_dict(data.get("throughput")),
        delay=_series_from_dict(data.get("delay")),
        messages=data["messages"],
        withdrawals=data["withdrawals"],
        reordering=reordering,
    )


def save_points(points: Mapping[tuple[str, int], PointResult], path: str) -> None:
    """Write a sweep (as from ``run_sweep``) to ``path`` as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "points": [
            {
                "protocol": protocol,
                "degree": degree,
                "runs": [scenario_to_dict(r) for r in point.runs],
            }
            for (protocol, degree), point in sorted(points.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)


def load_points(path: str) -> dict[tuple[str, int], PointResult]:
    """Read a sweep previously written by :func:`save_points`."""
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported results format version {version!r}")
    out: dict[tuple[str, int], PointResult] = {}
    for entry in payload["points"]:
        point = PointResult(protocol=entry["protocol"], degree=entry["degree"])
        point.runs.extend(scenario_from_dict(r) for r in entry["runs"])
        out[(entry["protocol"], entry["degree"])] = point
    return out
