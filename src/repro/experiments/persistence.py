"""Result persistence: save/load experiment outcomes as JSON.

Paper-scale sweeps take minutes; this module lets the harness checkpoint
results (`save_points`) and reload them for later analysis or plotting
(`load_points`) without re-simulating.  The format is plain JSON — stable,
diff-able, and readable outside Python.

Format history:

* **v3** (current) — the single-failure scalars (``failed_link``,
  ``pre_failure_path``) became a general topology-event schedule: each run
  records ``initial_path`` plus an ``events`` list (kind, link, event and
  detection times, and the attributed reconvergence wave).  A
  save→load→save round trip is byte-identical.
* **v2** — lossless for everything a single-failure sweep produced:
  scenario measurements, the throughput/delay series, loop and reordering
  reports, monitor skips, and per-point :class:`SweepFailure` records.
* **v1** — scalar measurements plus series only; silently dropped
  ``monitor_skips``, ``loop_report``, and point ``failures``.

v1 and v2 stay loadable: their one ``failed_link`` is migrated to a
single ``fail`` event with unknown (``None``) times, and re-saving
upgrades the file to v3.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..metrics.loops import LoopReport
from ..metrics.reordering import ReorderingReport
from ..metrics.timeseries import BinnedSeries
from .runner import PointResult, SweepFailure
from .scenario import ScenarioResult, TopologyEventOutcome

__all__ = [
    "scenario_to_dict",
    "scenario_from_dict",
    "failure_to_dict",
    "failure_from_dict",
    "save_points",
    "load_points",
]

#: Version written by :func:`save_points` / the sweep shard store.
FORMAT_VERSION = 3
#: Versions :func:`load_points` understands.
SUPPORTED_VERSIONS = (1, 2, 3)


def _series_to_dict(series: BinnedSeries | None) -> dict | None:
    if series is None:
        return None
    return {"times": list(series.times), "values": list(series.values)}


def _series_from_dict(data: Mapping | None) -> BinnedSeries | None:
    if data is None:
        return None
    return BinnedSeries(times=tuple(data["times"]), values=tuple(data["values"]))


def _event_to_dict(event: TopologyEventOutcome) -> dict:
    return {
        "kind": event.kind,
        "link": list(event.link),
        "time": event.time,
        "detect_time": event.detect_time,
        "wave_start": event.wave_start,
        "wave_end": event.wave_end,
    }


def _event_from_dict(data: Mapping[str, Any]) -> TopologyEventOutcome:
    return TopologyEventOutcome(
        kind=data["kind"],
        link=tuple(data["link"]),
        time=data["time"],
        detect_time=data["detect_time"],
        wave_start=data.get("wave_start"),
        wave_end=data.get("wave_end"),
    )


def scenario_to_dict(result: ScenarioResult) -> dict:
    """JSON-ready representation of one run's measurements (format v3)."""
    return {
        "protocol": result.protocol,
        "degree": result.degree,
        "seed": result.seed,
        "sender": result.sender,
        "receiver": result.receiver,
        "initial_path": list(result.initial_path),
        "events": [_event_to_dict(e) for e in result.events],
        "expected_final_path": (
            list(result.expected_final_path)
            if result.expected_final_path is not None
            else None
        ),
        "sent": result.sent,
        "delivered": result.delivered,
        "drops_no_route": result.drops_no_route,
        "drops_ttl": result.drops_ttl,
        "drops_link_down": result.drops_link_down,
        "drops_queue": result.drops_queue,
        "routing_convergence": result.routing_convergence,
        "destination_convergence": result.destination_convergence,
        "forwarding_convergence": result.forwarding_convergence,
        "converged_to_expected": result.converged_to_expected,
        "transient_path_count": result.transient_path_count,
        "messages": result.messages,
        "withdrawals": result.withdrawals,
        "violations": list(result.violations),
        "monitor_skips": dict(result.monitor_skips),
        "dump_path": result.dump_path,
        "throughput": _series_to_dict(result.throughput),
        "delay": _series_to_dict(result.delay),
        "reordering": (
            {
                "delivered": result.reordering.delivered,
                "late_packets": result.reordering.late_packets,
                "max_displacement": result.reordering.max_displacement,
                "episodes": result.reordering.episodes,
            }
            if result.reordering is not None
            else None
        ),
        "loop_report": (
            {
                "delivered": result.loop_report.delivered,
                "escaped_loop": result.loop_report.escaped_loop,
                "loop_cycles": [list(c) for c in result.loop_report.loop_cycles],
                "max_extra_hops": result.loop_report.max_extra_hops,
            }
            if result.loop_report is not None
            else None
        ),
    }


def scenario_from_dict(data: Mapping[str, Any]) -> ScenarioResult:
    """Inverse of :func:`scenario_to_dict` (accepts v1, v2, and v3 dicts).

    Present-but-empty collections are restored as empty, not collapsed to
    ``None``: only a JSON ``null`` (or a missing v1 field) maps to ``None``.
    v1/v2 dicts carry ``failed_link``/``pre_failure_path`` instead of the
    event schedule; the link is migrated to one ``fail`` event with unknown
    (``None``) times — the old formats never recorded when it fired.
    """
    reordering = None
    if data.get("reordering") is not None:
        r = data["reordering"]
        reordering = ReorderingReport(
            delivered=r["delivered"],
            late_packets=r["late_packets"],
            max_displacement=r["max_displacement"],
            episodes=r["episodes"],
        )
    loop_report = None
    if data.get("loop_report") is not None:
        lr = data["loop_report"]
        loop_report = LoopReport(
            delivered=lr["delivered"],
            escaped_loop=lr["escaped_loop"],
            loop_cycles=tuple(tuple(c) for c in lr["loop_cycles"]),
            max_extra_hops=lr["max_extra_hops"],
        )
    expected_final_path = data.get("expected_final_path")
    if "events" in data:
        events = tuple(_event_from_dict(e) for e in data["events"])
        initial_path = tuple(data["initial_path"])
    else:
        # v1/v2 migration: one failure, canonical link key, times unknown.
        a, b = data["failed_link"]
        events = (
            TopologyEventOutcome(
                kind="fail", link=(min(a, b), max(a, b)), time=None, detect_time=None
            ),
        )
        initial_path = tuple(data["pre_failure_path"])
    return ScenarioResult(
        protocol=data["protocol"],
        degree=data["degree"],
        seed=data["seed"],
        sender=data["sender"],
        receiver=data["receiver"],
        initial_path=initial_path,
        events=events,
        expected_final_path=(
            tuple(expected_final_path) if expected_final_path is not None else None
        ),
        sent=data["sent"],
        delivered=data["delivered"],
        drops_no_route=data["drops_no_route"],
        drops_ttl=data["drops_ttl"],
        drops_link_down=data["drops_link_down"],
        drops_queue=data["drops_queue"],
        routing_convergence=data["routing_convergence"],
        destination_convergence=data.get("destination_convergence", 0.0),
        forwarding_convergence=data["forwarding_convergence"],
        converged_to_expected=data["converged_to_expected"],
        transient_path_count=data["transient_path_count"],
        violations=tuple(data.get("violations", ())),
        monitor_skips=dict(data.get("monitor_skips") or {}),
        dump_path=data.get("dump_path"),
        throughput=_series_from_dict(data.get("throughput")),
        delay=_series_from_dict(data.get("delay")),
        messages=data["messages"],
        withdrawals=data["withdrawals"],
        loop_report=loop_report,
        reordering=reordering,
    )


def failure_to_dict(failure: SweepFailure) -> dict:
    """JSON-ready representation of one :class:`SweepFailure`."""
    return {
        "protocol": failure.protocol,
        "degree": failure.degree,
        "seed": failure.seed,
        "error": failure.error,
    }


def failure_from_dict(data: Mapping[str, Any]) -> SweepFailure:
    """Inverse of :func:`failure_to_dict`."""
    return SweepFailure(
        protocol=data["protocol"],
        degree=data["degree"],
        seed=data["seed"],
        error=data["error"],
    )


def save_points(points: Mapping[tuple[str, int], PointResult], path: str) -> None:
    """Write a sweep (as from ``run_sweep``) to ``path`` as JSON (v3)."""
    payload = {
        "format_version": FORMAT_VERSION,
        "points": [
            {
                "protocol": protocol,
                "degree": degree,
                "runs": [scenario_to_dict(r) for r in point.runs],
                "failures": [failure_to_dict(f) for f in point.failures],
            }
            for (protocol, degree), point in sorted(points.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1)


def load_points(path: str) -> dict[tuple[str, int], PointResult]:
    """Read a sweep previously written by :func:`save_points` (v1-v3)."""
    with open(path, "r", encoding="utf-8") as f:
        payload = json.load(f)
    version = payload.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported results format version {version!r}")
    out: dict[tuple[str, int], PointResult] = {}
    for entry in payload["points"]:
        point = PointResult(protocol=entry["protocol"], degree=entry["degree"])
        point.runs.extend(scenario_from_dict(r) for r in entry["runs"])
        point.failures.extend(
            failure_from_dict(f) for f in entry.get("failures", ())
        )
        out[(entry["protocol"], entry["degree"])] = point
    return out
