"""Shape validation: check a result set against the paper's claims.

The reproduction's contract is qualitative — who wins, in which direction,
where the knee falls.  This module encodes each of the paper's Observations
as a programmatic check over a ``(protocol, degree) -> PointResult`` sweep,
so a user who modifies a protocol (or adds one) can ask directly: *does the
paper still hold?*

Checks degrade gracefully: a check whose required protocols/degrees are not
in the sweep reports ``skipped`` rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from .runner import PointResult

__all__ = ["CheckResult", "validate_observations", "format_checks"]

Sweep = Mapping[tuple[str, int], PointResult]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one observation check."""

    name: str
    passed: Optional[bool]  # None = skipped (inputs not in the sweep)
    detail: str

    @property
    def skipped(self) -> bool:
        return self.passed is None


def _degrees(sweep: Sweep, protocol: str) -> list[int]:
    return sorted(d for p, d in sweep if p == protocol)


def _common_degrees(sweep: Sweep, *protocols: str) -> list[int]:
    """Degrees at which *every* named protocol was swept.

    Checks that compare protocols must index only these: a sweep may cover
    different degree sets per protocol, and a degree list taken from one
    protocol would KeyError on the other.
    """
    sets = [set(_degrees(sweep, p)) for p in protocols]
    return sorted(set.intersection(*sets)) if sets else []


def _have(sweep: Sweep, *protocols: str) -> bool:
    present = {p for p, _ in sweep}
    return all(p in present for p in protocols)


def _check_obs1_drops_vs_degree(sweep: Sweep) -> CheckResult:
    name = "Obs 1: drops fall with degree; RIP stays high; cache protocols reach ~0"
    if not _have(sweep, "rip", "dbf"):
        return CheckResult(name, None, "needs rip and dbf in the sweep")
    degrees = _common_degrees(sweep, "rip", "dbf")
    if len(degrees) < 2:
        return CheckResult(name, None, "needs at least two common rip/dbf degrees")
    lo, hi = degrees[0], degrees[-1]
    rip_hi = sweep[("rip", hi)].mean_drops_no_route
    dbf_hi = sweep[("dbf", hi)].mean_drops_no_route
    rip_worst_everywhere = all(
        sweep[("rip", d)].mean_drops_no_route
        >= sweep[("dbf", d)].mean_drops_no_route
        for d in degrees
    )
    ok = rip_worst_everywhere and dbf_hi < 5 and rip_hi > 20
    return CheckResult(
        name,
        ok,
        f"at degree {hi}: rip={rip_hi:.1f}, dbf={dbf_hi:.1f}; "
        f"rip worst at every degree: {rip_worst_everywhere}",
    )


def _check_obs2_ttl(sweep: Sweep) -> CheckResult:
    name = "Obs 2: RIP never loops; no loops at the richest degree; BGP >= BGP-3"
    if not _have(sweep, "rip"):
        return CheckResult(name, None, "needs rip in the sweep")
    degrees = _degrees(sweep, "rip")
    rip_clean = all(sweep[("rip", d)].mean_drops_ttl == 0 for d in degrees)
    hi = degrees[-1]
    detail = f"rip loop-free: {rip_clean}"
    top_clean = True
    if len(degrees) >= 2:
        # "No loops at the richest degree" is a claim about the high end of
        # a degree *range*; a single-degree sweep has no range to speak of
        # (and the paper's loop observations are specifically about low
        # connectivity), so the sub-check applies only to multi-degree sweeps.
        top_clean = all(
            point.mean_drops_ttl == 0
            for (p, d), point in sweep.items()
            if d == hi
        )
        detail += f"; degree-{hi} loop-free: {top_clean}"
    ratio_ok = True
    bgp_degrees = _common_degrees(sweep, "bgp", "bgp3")
    sparse = [d for d in bgp_degrees if d < max(bgp_degrees)] if bgp_degrees else []
    if sparse:
        worst_bgp = max(sweep[("bgp", d)].mean_drops_ttl for d in sparse)
        worst_bgp3 = max(sweep[("bgp3", d)].mean_drops_ttl for d in sparse)
        ratio_ok = worst_bgp >= worst_bgp3
        detail += f"; worst bgp={worst_bgp:.1f} vs bgp3={worst_bgp3:.1f}"
    return CheckResult(name, rip_clean and top_clean and ratio_ok, detail)


def _check_obs3_throughput(sweep: Sweep) -> CheckResult:
    name = "Obs 3: RIP's dip deep and slow; cache protocols barely dip at high degree"
    if not _have(sweep, "rip", "dbf"):
        return CheckResult(name, None, "needs rip and dbf in the sweep")
    degrees = _common_degrees(sweep, "rip", "dbf")
    if len(degrees) < 2:
        return CheckResult(
            name, None, "needs at least two common rip/dbf degrees"
        )
    lo, hi = degrees[0], degrees[-1]
    try:
        rip_series = sweep[("rip", lo)].mean_throughput()
        dbf_series = sweep[("dbf", hi)].mean_throughput()
    except ValueError:
        return CheckResult(name, None, "sweep lacks throughput series")
    steady = rip_series.window(-5.0, 0.0).mean_value()
    if steady <= 0:
        return CheckResult(name, None, "no pre-failure traffic in series")
    rip_dip = rip_series.window(0.0, 5.0).min_value()
    dbf_post = dbf_series.window(0.0, 15.0).mean_value()
    ok = rip_dip < 0.5 * steady and dbf_post > 0.85 * steady
    return CheckResult(
        name,
        ok,
        f"rip degree-{lo} dip {rip_dip:.1f}/{steady:.1f} pkt/s; "
        f"dbf degree-{hi} post-failure mean {dbf_post:.1f}",
    )


def _check_obs4_convergence_decoupling(sweep: Sweep) -> CheckResult:
    name = "Obs 4: BGP-3 converges faster than BGP; drops decouple at high degree"
    if not _have(sweep, "bgp", "bgp3"):
        return CheckResult(name, None, "needs bgp and bgp3 in the sweep")
    degrees = _common_degrees(sweep, "bgp", "bgp3")
    if not degrees:
        return CheckResult(name, None, "bgp and bgp3 share no swept degree")
    faster = all(
        sweep[("bgp3", d)].mean_routing_convergence
        < sweep[("bgp", d)].mean_routing_convergence
        for d in degrees
    )
    hi = degrees[-1]
    still_converging = sweep[("bgp", hi)].mean_routing_convergence > 1.0
    detail = (
        f"bgp3 faster at every degree: {faster}; "
        f"bgp still converging {still_converging}"
    )
    decoupled = True
    if len(degrees) >= 2:
        # Drop decoupling (MRAI speed stops mattering for loss) is a claim
        # about the rich end of a degree *range*; at a lone sparse degree the
        # variants legitimately differ by hundreds of drops.
        drop_gap = abs(
            sweep[("bgp", hi)].mean_drops_no_route
            - sweep[("bgp3", hi)].mean_drops_no_route
        )
        decoupled = drop_gap < 5
        detail += f"; degree-{hi} drop gap {drop_gap:.1f}"
    ok = faster and decoupled and still_converging
    return CheckResult(name, ok, detail)


def _check_obs5_delay(sweep: Sweep) -> CheckResult:
    name = "Obs 5: convergence-period delay exceeds steady state somewhere"
    candidates = [key for key in sweep if key[0] != "static"]
    if not candidates:
        return CheckResult(name, None, "empty sweep")
    for key in sorted(candidates):
        try:
            series = sweep[key].mean_delay()
        except ValueError:
            continue
        steady = series.window(-5.0, 0.0).mean_value()
        post = [v for v in series.window(0.0, 30.0).values if v > 0]
        if steady > 0 and post and max(post) > steady * 1.05:
            return CheckResult(
                name, True, f"{key}: max post-failure delay {max(post):.4f}s "
                f"vs steady {steady:.4f}s"
            )
    return CheckResult(name, False, "no protocol/degree showed delay inflation")


_CHECKS: list[Callable[[Sweep], CheckResult]] = [
    _check_obs1_drops_vs_degree,
    _check_obs2_ttl,
    _check_obs3_throughput,
    _check_obs4_convergence_decoupling,
    _check_obs5_delay,
]


def validate_observations(sweep: Sweep) -> list[CheckResult]:
    """Run every paper-Observation check against a sweep."""
    return [check(sweep) for check in _CHECKS]


def format_checks(results: list[CheckResult]) -> str:
    """Human-readable check report."""
    lines = []
    for r in results:
        status = "SKIP" if r.skipped else ("PASS" if r.passed else "FAIL")
        lines.append(f"[{status}] {r.name}")
        lines.append(f"       {r.detail}")
    passed = sum(1 for r in results if r.passed)
    failed = sum(1 for r in results if r.passed is False)
    skipped = sum(1 for r in results if r.skipped)
    lines.append(f"\n{passed} passed, {failed} failed, {skipped} skipped")
    return "\n".join(lines)
