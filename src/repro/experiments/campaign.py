"""One-command reproduction campaign.

``reproduce(config, out_dir)`` regenerates every figure of the paper's
evaluation and writes a self-contained results directory:

* ``figureN_*.svg`` — charts (dependency-free SVG);
* ``figureN_*.txt`` — the text tables/series the paper reports;
* ``results.json``  — every underlying run, reloadable via
  :func:`repro.experiments.persistence.load_points`;
* ``REPORT.md``     — a summary linking it all together.

Exposed on the CLI as ``python -m repro reproduce --out DIR``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..obs.profiler import NULL_PROFILER
from .config import ExperimentConfig
from .figures import (
    figure2_topologies,
    figure3_drops_no_route,
    figure4_ttl_expirations,
    figure5_throughput,
    figure6_convergence,
    figure7_delay,
    headline_bgp_vs_bgp3,
)
from .persistence import save_points
from .plotting import save_svg, series_chart, sweep_chart
from .report import format_series_grid, format_sweep_table
from .runner import run_sweep
from .validation import format_checks, validate_observations

__all__ = ["CampaignReport", "reproduce"]


@dataclass
class CampaignReport:
    """What a reproduction campaign produced."""

    out_dir: str
    config: ExperimentConfig
    artifacts: list[str] = field(default_factory=list)
    headline: dict[str, float] = field(default_factory=dict)

    def path(self, name: str) -> str:
        return os.path.join(self.out_dir, name)


def _write(report: CampaignReport, name: str, content: str) -> None:
    with open(report.path(name), "w", encoding="utf-8") as f:
        f.write(content)
        if not content.endswith("\n"):
            f.write("\n")
    report.artifacts.append(name)


def reproduce(
    config: Optional[ExperimentConfig] = None,
    out_dir: str = "reproduction",
    progress: bool = False,
    workers: int = 1,
    checkpoint_dir: Optional[str] = None,
    profiler=None,
    telemetry=None,
) -> CampaignReport:
    """Run the full figure suite and write all artifacts to ``out_dir``.

    ``checkpoint_dir`` makes the campaign's full sweep (the one behind
    Figure 6 and ``results.json``) durable: completed seeds are appended to
    a shard store there, and an interrupted campaign resumes the sweep from
    the shards instead of re-simulating.  ``workers`` parallelizes that
    sweep over a supervised process pool.

    ``profiler`` (a :class:`repro.obs.profiler.PhaseProfiler`) gets one span
    per figure so slow campaigns can be broken down by phase; ``telemetry``
    (a :class:`repro.obs.sweeps.SweepTelemetry`) collects per-seed execution
    telemetry from the Figure 6 sweep.
    """
    config = config or ExperimentConfig.quick()
    profiler = profiler if profiler is not None else NULL_PROFILER
    os.makedirs(out_dir, exist_ok=True)
    report = CampaignReport(out_dir=out_dir, config=config)

    def log(msg: str) -> None:
        if progress:
            print(msg)

    log("Figure 2: topology family ...")
    with profiler.span("figure2_topologies"):
        topo_info = figure2_topologies(config.rows, config.cols, (4, 5, 6))
        lines = ["Figure 2: regular mesh family", ""]
        for degree, info in sorted(topo_info.items()):
            lines.append(
                f"degree {degree}: {info['n_nodes']} nodes, {info['n_links']} links, "
                f"histogram {sorted(info['degree_histogram'].items())}"
            )
        _write(report, "figure2_topologies.txt", "\n".join(lines))

    log("Figure 3: drops vs degree ...")
    with profiler.span("figure3_drops"):
        fig3 = figure3_drops_no_route(config)
        _write(report, "figure3_drops.txt", format_sweep_table(fig3))
        save_svg(sweep_chart(fig3, ylabel="packet drops (no route)"),
                 report.path("figure3_drops.svg"))
        report.artifacts.append("figure3_drops.svg")

    log("Figure 4: TTL expirations vs degree ...")
    with profiler.span("figure4_ttl"):
        fig4 = figure4_ttl_expirations(config)
        _write(report, "figure4_ttl.txt", format_sweep_table(fig4))
        save_svg(sweep_chart(fig4, ylabel="TTL expirations"),
                 report.path("figure4_ttl.svg"))
        report.artifacts.append("figure4_ttl.svg")

    log("Figure 5: throughput vs time ...")
    with profiler.span("figure5_throughput"):
        degrees5 = (
            tuple(d for d in (3, 4, 6) if d in config.degrees) or config.degrees[:1]
        )
        fig5 = figure5_throughput(config, degrees5)
        _write(
            report,
            "figure5_throughput.txt",
            format_series_grid(
                fig5, "Figure 5: instantaneous throughput (pkt/s), failure at t=0",
                t_min=-5, t_max=min(50.0, config.post_fail_window - 10), step=5,
            ),
        )
        save_svg(
            series_chart(fig5, "Figure 5: instantaneous throughput",
                         "packets/second", t_min=-5, t_max=50),
            report.path("figure5_throughput.svg"),
        )
        report.artifacts.append("figure5_throughput.svg")

    log("Figure 6: convergence vs degree ...")
    with profiler.span("figure6_convergence"):
        sweep_points = run_sweep(
            config, workers=workers, store=checkpoint_dir, telemetry=telemetry
        )
        fwd, rt = figure6_convergence(config, points=sweep_points)
        _write(
            report,
            "figure6_convergence.txt",
            format_sweep_table(fwd, 2) + "\n\n" + format_sweep_table(rt, 2),
        )
        save_svg(sweep_chart(fwd, ylabel="seconds"),
                 report.path("figure6a_forwarding.svg"))
        save_svg(sweep_chart(rt, ylabel="seconds"),
                 report.path("figure6b_routing.svg"))
        report.artifacts.extend(["figure6a_forwarding.svg", "figure6b_routing.svg"])
        # Persist the underlying runs once (figure 6 computed a full sweep).
        save_points(fwd.points, report.path("results.json"))
        report.artifacts.append("results.json")

    log("Figure 7: delay vs time ...")
    with profiler.span("figure7_delay"):
        degrees7 = (
            tuple(d for d in (4, 5, 6) if d in config.degrees) or config.degrees[:1]
        )
        fig7 = figure7_delay(config, degrees7)
        _write(
            report,
            "figure7_delay.txt",
            format_series_grid(
                fig7, "Figure 7: instantaneous packet delay (s), failure at t=0",
                t_min=-5, t_max=min(50.0, config.post_fail_window - 10), step=5,
                precision=4,
            ),
        )
        save_svg(
            series_chart(fig7, "Figure 7: instantaneous packet delay", "seconds",
                         t_min=-5, t_max=50),
            report.path("figure7_delay.svg"),
        )
        report.artifacts.append("figure7_delay.svg")

    log("Headline: BGP vs BGP-3 ...")
    with profiler.span("headline"):
        headline_degree = 5 if 5 in config.degrees else config.degrees[-1]
        report.headline = headline_bgp_vs_bgp3(config, degree=headline_degree)

    log("Validating the paper's Observations against the sweep ...")
    with profiler.span("validation"):
        checks = validate_observations(fwd.points)
        _write(report, "validation.txt", format_checks(checks))

    summary = [
        "# Reproduction report",
        "",
        "Paper: Pei, Wang, Massey, Wu, Zhang — *A Study of Packet Delivery",
        "Performance during Routing Convergence* (DSN 2003).",
        "",
        f"Configuration: {config.rows}x{config.cols} mesh, degrees "
        f"{list(config.degrees)}, {config.runs} seed(s)/point, "
        f"{config.rate_pps:g} pkt/s, {config.post_fail_window:g} s window.",
        "",
        f"Headline (degree {headline_degree}): BGP dropped "
        f"{report.headline['bgp']:.0f} packets vs BGP-3's "
        f"{report.headline['bgp3']:.0f} (ratio {report.headline['ratio']:.1f}x).",
        "",
        "## Artifacts",
        "",
    ]
    passed = sum(1 for c in checks if c.passed)
    failed = sum(1 for c in checks if c.passed is False)
    summary += [f"* `{name}`" for name in report.artifacts]
    summary += [
        "",
        f"Observation checks: {passed} passed, {failed} failed "
        "(see `validation.txt`).",
        "",
        "Reload the raw runs with "
        "`repro.experiments.persistence.load_points('results.json')`.",
    ]
    _write(report, "REPORT.md", "\n".join(summary))
    log(f"done: {len(report.artifacts)} artifacts in {out_dir}/")
    return report
