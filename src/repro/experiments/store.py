"""Durable sweep checkpoint store: a manifest plus append-only JSONL shards.

Paper-scale sweeps average (protocol × degree × seed) grids that take minutes
to simulate; losing a whole campaign to a crash, an OOM-killed worker, or a
Ctrl-C is not acceptable at that scale.  The store makes sweeps durable:

* ``manifest.json`` — the sweep's identity: results format version, the
  configuration (and its content hash), and the full task grid.  Written
  atomically once, when the store is first opened.
* ``shards.jsonl`` — one JSON record per completed task, appended and flushed
  as each seed finishes.  A record is either a full v2 scenario dict
  (``{"kind": "run", ...}``) or a recorded failure
  (``{"kind": "failure", ...}``).

Resume semantics: reopening the store with the *same* configuration (checked
by content hash — see :meth:`ExperimentConfig.fingerprint`) yields the set of
already-completed tasks; the executor re-runs only what is missing.  Because
every seed is deterministic in (protocol, degree, seed, config) and the v2
format round-trips losslessly, a killed-and-resumed sweep is bit-identical
to an uninterrupted one.

Crash tolerance: a process killed mid-append can leave a torn final line;
:meth:`SweepStore.open` repairs the shard file by truncating it back to the
last complete record before any new append, so the file never accretes
garbage between two valid records.
"""

from __future__ import annotations

import io
import json
import os
from typing import Optional, Union

from .config import ExperimentConfig
from .persistence import (
    FORMAT_VERSION,
    failure_from_dict,
    failure_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from .runner import SweepFailure
from .scenario import ScenarioResult

__all__ = ["SweepStore", "StoreMismatchError", "Task", "Outcome"]

#: One grid cell: (protocol, degree, seed).
Task = tuple[str, int, int]
#: What a completed task produced.
Outcome = Union[ScenarioResult, SweepFailure]

MANIFEST_NAME = "manifest.json"
SHARDS_NAME = "shards.jsonl"


class StoreMismatchError(ValueError):
    """The store on disk belongs to a different sweep configuration."""


def _outcome_key(outcome: Outcome) -> Task:
    return (outcome.protocol, outcome.degree, outcome.seed)


class SweepStore:
    """Append-only checkpoint store for one sweep directory.

    Typical lifecycle::

        store = SweepStore("campaign/")
        store.open(config)            # create or validate the manifest
        done = store.load_outcomes()  # {} on a fresh store
        ... run missing tasks, calling store.append(outcome) per task ...
        store.close()

    ``append`` flushes each record, so at most the in-flight record is lost
    to a hard kill — and the torn-tail repair in :meth:`open` cleans that up
    on the next resume.
    """

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self.directory = os.fspath(directory)
        self._manifest: Optional[dict] = None
        self._shard_file: Optional[io.TextIOWrapper] = None

    # ------------------------------------------------------------- paths

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def shards_path(self) -> str:
        return os.path.join(self.directory, SHARDS_NAME)

    def exists(self) -> bool:
        """True if this directory already holds a sweep manifest."""
        return os.path.exists(self.manifest_path)

    # ---------------------------------------------------------- manifest

    def open(self, config: ExperimentConfig) -> None:
        """Create the store for ``config``, or validate an existing one.

        Raises :class:`StoreMismatchError` if the directory already holds a
        manifest for a different configuration — resuming a sweep under
        changed parameters would silently mix incompatible results.
        """
        os.makedirs(self.directory, exist_ok=True)
        if self.exists():
            manifest = self._read_manifest()
            recorded = manifest.get("config_hash")
            if recorded != config.fingerprint():
                raise StoreMismatchError(
                    f"checkpoint at {self.directory!r} was created with a "
                    f"different configuration (hash {recorded!r} != "
                    f"{config.fingerprint()!r}); use a fresh directory or "
                    "the manifest's own config"
                )
            self._manifest = manifest
        else:
            manifest = {
                "format_version": FORMAT_VERSION,
                "config_hash": config.fingerprint(),
                "config": config.to_dict(),
                "grid": [list(task) for task in config.grid()],
            }
            self._write_manifest(manifest)
            self._manifest = manifest
        self._repair_shards()

    def _read_manifest(self) -> dict:
        with open(self.manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported sweep manifest version {version!r} "
                f"in {self.manifest_path!r}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        # Atomic: a crash during creation leaves either no manifest (fresh
        # start next time) or a complete one, never a torn half-manifest.
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=1)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.manifest_path)

    def load_config(self) -> ExperimentConfig:
        """The configuration recorded in the manifest (for ``--resume``)."""
        manifest = self._manifest or self._read_manifest()
        return ExperimentConfig.from_dict(manifest["config"])

    def grid(self) -> list[Task]:
        """The full task grid recorded in the manifest."""
        manifest = self._manifest or self._read_manifest()
        return [(str(p), int(d), int(s)) for p, d, s in manifest["grid"]]

    # ------------------------------------------------------------ shards

    def _repair_shards(self) -> None:
        """Truncate a torn trailing record left by a hard kill mid-append."""
        if not os.path.exists(self.shards_path):
            return
        valid_end = 0
        with open(self.shards_path, "rb") as f:
            for line in f:
                if not line.endswith(b"\n"):
                    break  # partial tail: no terminator
                try:
                    json.loads(line)
                except json.JSONDecodeError:
                    break  # terminator present but record torn
                valid_end += len(line)
        if valid_end < os.path.getsize(self.shards_path):
            with open(self.shards_path, "r+b") as f:
                f.truncate(valid_end)

    def load_outcomes(self) -> dict[Task, Outcome]:
        """All durably recorded outcomes, keyed by (protocol, degree, seed).

        Tolerates a torn trailing line (ignored) and duplicate records for
        the same task (first record wins — it is the one a previous run
        completed and may already have reported).
        """
        out: dict[Task, Outcome] = {}
        if not os.path.exists(self.shards_path):
            return out
        with open(self.shards_path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a crash mid-append
                if record.get("kind") == "telemetry":
                    # Execution telemetry rides alongside results but is not
                    # a result: skipping it keeps resumed sweeps bit-identical
                    # to uninterrupted ones.
                    continue
                outcome = self._decode(record)
                out.setdefault(_outcome_key(outcome), outcome)
        return out

    @staticmethod
    def _decode(record: dict) -> Outcome:
        kind = record.get("kind")
        if kind == "run":
            return scenario_from_dict(record["run"])
        if kind == "failure":
            return failure_from_dict(record["failure"])
        raise ValueError(f"unknown shard record kind {kind!r}")

    def append(self, outcome: Outcome) -> None:
        """Durably record one completed task (flushed immediately)."""
        if isinstance(outcome, SweepFailure):
            record = {"kind": "failure", "failure": failure_to_dict(outcome)}
        else:
            record = {"kind": "run", "run": scenario_to_dict(outcome)}
        self._append_record(record)

    def append_telemetry(self, timing: dict) -> None:
        """Durably record one seed's execution telemetry.

        Telemetry records (``{"kind": "telemetry", ...}``) share the shard
        log with results but are invisible to :meth:`load_outcomes`; they
        describe how the sweep *ran* (wall time, retries, timeouts), not what
        it computed.
        """
        self._append_record({"kind": "telemetry", "telemetry": timing})

    def load_telemetry(self) -> list[dict]:
        """All per-seed telemetry records, in append order."""
        out: list[dict] = []
        if not os.path.exists(self.shards_path):
            return out
        with open(self.shards_path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a crash mid-append
                if record.get("kind") == "telemetry":
                    out.append(record["telemetry"])
        return out

    def _append_record(self, record: dict) -> None:
        if self._shard_file is None:
            self._shard_file = open(self.shards_path, "a", encoding="utf-8")
        self._shard_file.write(json.dumps(record) + "\n")
        self._shard_file.flush()

    def completed_tasks(self) -> set[Task]:
        """Tasks with a durable outcome (run or recorded failure)."""
        return set(self.load_outcomes())

    def missing_tasks(self) -> list[Task]:
        """Grid tasks with no durable outcome yet, in grid order."""
        done = self.completed_tasks()
        return [task for task in self.grid() if task not in done]

    def close(self) -> None:
        """Flush and fsync the shard file (safe to call repeatedly)."""
        if self._shard_file is not None:
            self._shard_file.flush()
            os.fsync(self._shard_file.fileno())
            self._shard_file.close()
            self._shard_file = None

    # ----------------------------------------------------- context manager

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
