"""Scenario builder: one protocol, one topology, one event schedule, one flow.

Reconstructs the paper's experiment (§5): a sender attached to a random
first-row router streams CBR traffic to a receiver attached to a random
last-row router; after steady state, one randomly chosen link on the current
sender->receiver shortest path fails; every packet-level consequence is
measured until the post-failure window closes.

The failure side is driver-pluggable: by default the run executes the
paper's :class:`~repro.net.dynamics.SingleLinkFailureDriver`, but a
``driver_factory`` can substitute any :class:`~repro.net.dynamics.
TopologyDriver` (scripted flaps, mobility churn) over the same mesh.  Every
executed event lands on :attr:`ScenarioResult.events` with its own
reconvergence wave attributed from the network-wide route-change stream.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..metrics.convergence import (
    ConvergenceTracker,
    NetworkConvergenceWatcher,
    attribute_waves,
)
from ..metrics.counters import DropCounter, MessageCounter
from ..metrics.loops import LoopReport, analyze_deliveries
from ..metrics.manet import ManetReport, analyze_manet
from ..metrics.reordering import ReorderingReport, analyze_reordering
from ..metrics.timeseries import BinnedSeries, delay_series, throughput_series
from ..net.dynamics import LinkScheduler, SingleLinkFailureDriver, TopologyDriver
from ..net.network import Network
from ..net.node import Node
from ..obs.flight import FlightRecorder, build_dump, save_dump
from ..obs.profiler import NULL_PROFILER
from ..routing.aodv import AodvProtocol
from ..routing.bgp import BgpConfig, BgpProtocol
from ..routing.damping import DampingConfig
from ..routing.dsr import DsrProtocol
from ..routing.olsr import OlsrProtocol
from ..routing.dbf import DbfProtocol
from ..routing.dual import DualProtocol
from ..routing.dv_common import DistanceVectorConfig
from ..routing.rip import RipProtocol
from ..routing.spf import SpfConfig, SpfProtocol
from ..routing.static import StaticProtocol
from ..sim.engine import Simulator
from ..sim.rng import RngStreams
from ..sim.tracing import TraceBus
from ..topology.generators import attach_host
from ..topology.graph import Topology
from ..topology.mesh import regular_mesh
from ..traffic.cbr import CbrSource
from ..traffic.flows import FlowSpec
from ..traffic.sink import PacketSink
from .config import ExperimentConfig

__all__ = [
    "ScenarioPlan",
    "ScenarioResult",
    "TopologyEventOutcome",
    "run_scenario",
    "make_protocol_factory",
]


@dataclass(frozen=True)
class TopologyEventOutcome:
    """One executed topology event and the reconvergence wave it caused.

    ``wave_start``/``wave_end`` are the first and last network-wide route
    changes inside the event's attribution window (from its detection to
    the next event's detection, the last window running to the end of the
    run); both ``None`` when the window saw no routing activity.  Results
    migrated from format v1/v2 carry ``time=None``/``detect_time=None`` —
    the old formats recorded only which link failed, not when.
    """

    kind: str  # "fail" | "restore"
    link: tuple[int, int]
    time: Optional[float]
    detect_time: Optional[float]
    wave_start: Optional[float] = None
    wave_end: Optional[float] = None


@dataclass(frozen=True)
class ScenarioPlan:
    """The laid-out run a ``driver_factory`` may build its schedule from."""

    topology: Topology
    sender: int
    receiver: int
    pre_path: tuple[int, ...]
    failed: tuple[int, int]
    fail_at: float
    detect_at: float
    end_at: float


@dataclass
class ScenarioResult:
    """Everything measured in one simulation run."""

    protocol: str
    degree: int
    seed: int
    sender: int
    receiver: int
    initial_path: tuple[int, ...]
    expected_final_path: Optional[tuple[int, ...]]
    #: Every executed topology event, in execution order, with its wave.
    events: tuple[TopologyEventOutcome, ...] = ()
    # Packet accounting (post-failure window for drops; whole flow otherwise).
    sent: int = 0
    delivered: int = 0
    drops_no_route: int = 0
    drops_ttl: int = 0
    drops_link_down: int = 0
    drops_queue: int = 0
    # Convergence clocks (seconds from failure detection).
    routing_convergence: float = 0.0  # network-wide, all destinations (Fig 6b)
    destination_convergence: float = 0.0  # receiver destination only
    forwarding_convergence: float = 0.0  # sender->receiver path (Fig 6a)
    converged_to_expected: bool = False
    transient_path_count: int = 0
    # Per-second series, times relative to the failure instant.
    throughput: Optional[BinnedSeries] = None
    delay: Optional[BinnedSeries] = None
    # Control-plane overhead in the post-failure window.
    messages: int = 0
    withdrawals: int = 0
    # Loop analysis (only when record_paths was enabled).
    loop_report: Optional[LoopReport] = None
    # Arrival-order inversion analysis (always computed).
    reordering: Optional[ReorderingReport] = None
    # MANET triple: PDR / normalized routing load / E2E delay (whole run).
    manet: Optional[ManetReport] = None
    # Invariant-monitor findings (non-empty only for validated runs).
    violations: tuple[str, ...] = ()
    # Monitors that declined to judge this run: name -> reason.
    monitor_skips: dict[str, str] = field(default_factory=dict)
    # Post-mortem flight dump written because a monitor fired (None otherwise).
    dump_path: Optional[str] = None

    @property
    def total_drops(self) -> int:
        return (
            self.drops_no_route
            + self.drops_ttl
            + self.drops_link_down
            + self.drops_queue
        )

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0

    # Legacy accessors (pre-event-schedule results had exactly one failure).

    @property
    def failed_link(self) -> Optional[tuple[int, int]]:
        """The first failed link, or ``None`` for an event-free run."""
        for event in self.events:
            if event.kind == "fail":
                return event.link
        return None

    @property
    def pre_failure_path(self) -> tuple[int, ...]:
        """Legacy alias for :attr:`initial_path`."""
        return self.initial_path


def make_protocol_factory(
    name: str,
    network: Network,
    rng_streams: RngStreams,
    topology: Topology,
    config: ExperimentConfig,
) -> Callable[[Node], object]:
    """Protocol constructor-by-name, sharing one RNG family per run."""
    dv_config = DistanceVectorConfig(infinity=config.dv_infinity)

    def factory(node: Node) -> object:
        if name == "rip":
            return RipProtocol(node, rng_streams, dv_config)
        if name == "rip-hd":
            from dataclasses import replace

            return RipProtocol(
                node, rng_streams, replace(dv_config, holddown=90.0)
            )
        if name == "dbf":
            return DbfProtocol(node, rng_streams, dv_config)
        if name == "bgp":
            return BgpProtocol(node, rng_streams, network, BgpConfig.standard())
        if name == "bgp3":
            return BgpProtocol(node, rng_streams, network, BgpConfig.fast())
        if name == "bgp-pd":
            cfg = BgpConfig(per_destination_mrai=True, label="bgp-pd")
            return BgpProtocol(node, rng_streams, network, cfg)
        if name == "bgp3-pd":
            cfg = BgpConfig(
                mrai_base=3.0, mrai_jitter=0.5, per_destination_mrai=True, label="bgp3-pd"
            )
            return BgpProtocol(node, rng_streams, network, cfg)
        if name == "bgp3-ssld":
            cfg = BgpConfig(
                mrai_base=3.0,
                mrai_jitter=0.5,
                sender_side_loop_detection=True,
                label="bgp3-ssld",
            )
            return BgpProtocol(node, rng_streams, network, cfg)
        if name == "bgp-ssld":
            cfg = BgpConfig(sender_side_loop_detection=True, label="bgp-ssld")
            return BgpProtocol(node, rng_streams, network, cfg)
        if name == "bgp-rfd":
            cfg = BgpConfig(damping=DampingConfig(), label="bgp-rfd")
            return BgpProtocol(node, rng_streams, network, cfg)
        if name == "bgp3-rfd":
            cfg = BgpConfig(
                mrai_base=3.0, mrai_jitter=0.5, damping=DampingConfig(), label="bgp3-rfd"
            )
            return BgpProtocol(node, rng_streams, network, cfg)
        if name == "dual":
            return DualProtocol(node, rng_streams, network)
        if name == "spf":
            return SpfProtocol(node, rng_streams)
        if name == "spf-slow":
            return SpfProtocol(node, rng_streams, SpfConfig(spf_delay=2.0, label="spf-slow"))
        if name == "spf-lfa":
            return SpfProtocol(
                node, rng_streams, SpfConfig(spf_delay=2.0, lfa=True, label="spf-lfa")
            )
        if name == "static":
            return StaticProtocol(node, rng_streams, topology)
        if name == "aodv":
            return AodvProtocol(node, rng_streams)
        if name == "dsr":
            return DsrProtocol(node, rng_streams)
        if name == "olsr":
            return OlsrProtocol(node, rng_streams)
        raise ValueError(f"unknown protocol {name!r}")

    return factory


def _pick_endpoints(
    rng: random.Random, rows: int, cols: int
) -> tuple[int, int]:
    """Random first-row and last-row routers (paper's attachment rule)."""
    sender_router = rng.randrange(0, cols)
    receiver_router = (rows - 1) * cols + rng.randrange(0, cols)
    return sender_router, receiver_router


def _pick_failed_link(
    rng: random.Random, path: list[int], sender: int, receiver: int
) -> tuple[int, int]:
    """Random mesh link on the shortest path (access links excluded)."""
    edges = [
        (path[i], path[i + 1])
        for i in range(len(path) - 1)
        if sender not in (path[i], path[i + 1])
        and receiver not in (path[i], path[i + 1])
    ]
    if not edges:
        raise ValueError("shortest path has no mesh links to fail")
    return rng.choice(edges)


def run_scenario(
    protocol: str,
    degree: int,
    seed: int,
    config: Optional[ExperimentConfig] = None,
    monitors: Optional[object] = None,
    obs: Optional[object] = None,
    recorder: Optional[FlightRecorder] = None,
    dump_dir: Optional[str] = None,
    driver_factory: Optional[Callable[[ScenarioPlan], TopologyDriver]] = None,
    live_log=None,
) -> ScenarioResult:
    """Run one complete experiment and return all measurements.

    ``driver_factory`` substitutes the topology-event schedule: it receives
    the laid-out :class:`ScenarioPlan` (topology, flow endpoints, the
    on-path link the default scenario would fail, and the run's clock) and
    returns any :class:`~repro.net.dynamics.TopologyDriver`.  The default is
    the paper's single on-path failure,
    ``SingleLinkFailureDriver(plan.failed, plan.fail_at)``, which schedules
    the exact same engine events the pre-driver implementation did.

    ``monitors`` is an optional :class:`repro.validation.MonitorSuite` to
    attach to the run; with ``config.validate`` set a default suite is
    created automatically.  Monitor findings land on
    ``ScenarioResult.violations``.

    ``obs`` is an optional :class:`repro.obs.RunObservation`: its profiler
    receives the phase spans (setup / warmup / steady / failure /
    convergence / drain) and its registry the run's metrics.  Observation is
    read-only — it never touches simulated time or RNG streams — so results
    are bit-identical with and without it (pinned by the golden on/off test).

    ``recorder`` is an optional :class:`repro.obs.FlightRecorder`; it is
    attached to the run's bus (capturing warm-start route installs too) and
    detached before return, rings left readable for autopsies/timelines.
    ``dump_dir`` arms post-mortems: if any monitor fires, the recorder's
    rings are snapshotted to a versioned JSON dump there (a recorder is
    created on the fly when only ``dump_dir`` is given) and
    ``ScenarioResult.dump_path`` names the file.  Like ``obs``, recording is
    read-only and does not perturb results.

    ``live_log`` (a path or an open :class:`~repro.obs.live.RunEventLog`)
    streams progress records: single-process runs emit one heartbeat at
    each phase boundary (the log is written strictly *between*
    ``sim.run`` calls, so the event stream is untouched); sharded runs
    delegate to the coordinator's window-throttled heartbeats.  Metrics
    stay byte-identical either way (pinned by the transparency tests).
    """
    config = config or ExperimentConfig.quick()
    if config.shards > 1:
        # Delegate to the sharded runtime (repro.dist): same layout, same
        # schedule, byte-identical result — pinned by the differential suite.
        unsupported = {
            "monitors": monitors,
            "obs": obs,
            "recorder": recorder,
            "dump_dir": dump_dir,
            "driver_factory": driver_factory,
        }
        given = sorted(name for name, value in unsupported.items() if value is not None)
        if given:
            raise ValueError(
                f"sharded runs (shards={config.shards}) do not support "
                f"{', '.join(given)}; the offline merge re-derives the "
                "invariants it can (see docs/distributed.md)"
            )
        from ..dist.runner import run_scenario_sharded

        return run_scenario_sharded(
            protocol, degree, seed, config, live_log=live_log
        )
    if recorder is None and dump_dir is not None:
        recorder = FlightRecorder()
    if monitors is None and config.validate:
        from ..validation.monitors import MonitorSuite

        monitors = MonitorSuite()
    profiler = obs.profiler if obs is not None else NULL_PROFILER

    from ..obs.live import open_live_log

    log, owns_log = open_live_log(
        live_log,
        run="scenario",
        meta={"protocol": protocol, "degree": degree, "seed": seed},
    )
    log_started = time.perf_counter()

    def beat(phase: str, sim) -> None:
        """Phase-boundary heartbeat — written between sim.run calls only."""
        if log is not None:
            log.heartbeat(
                shard=0,
                clock=sim.now,
                events=sim.events_processed,
                wall_s=time.perf_counter() - log_started,
                phase=phase,
            )

    rng_streams = RngStreams(seed)
    scenario_rng = rng_streams.stream("scenario")

    with profiler.span("setup"):
        # --- topology with sender/receiver hosts attached -------------------
        topo = regular_mesh(config.rows, config.cols, degree)
        sender_router, receiver_router = _pick_endpoints(
            scenario_rng, config.rows, config.cols
        )
        sender = attach_host(topo, sender_router)
        receiver = attach_host(topo, receiver_router)

        pre_path = topo.shortest_path(sender, receiver)
        assert pre_path is not None, "mesh must be connected"
        failed = _pick_failed_link(scenario_rng, pre_path, sender, receiver)
        expected_final = topo.shortest_path(sender, receiver, exclude_link=failed)

        # --- live network ----------------------------------------------------
        sim = Simulator(queue=config.event_queue)
        bus = TraceBus(keep_routes=False, keep_links=False)
        if obs is not None:
            obs.attach(bus)
        if recorder is not None:
            recorder.attach(bus)
        network = Network(
            sim,
            topo,
            bus,
            queue_capacity=config.queue_capacity,
            record_paths=config.record_paths,
            # Monitors and the flight recorder want the hop-by-hop TTL view.
            record_forwards=monitors is not None or recorder is not None,
            priority_control=config.prioritize_control,
        )
        factory = make_protocol_factory(protocol, network, rng_streams, topo, config)
        network.attach_protocols(factory)

    with profiler.span("warmup", sim=sim):
        base = 0.0
        if config.cold_start:
            network.start_protocols()
            sim.run(until=config.cold_warmup)
            base = config.cold_warmup
        else:
            for node in network.iter_nodes():
                assert node.protocol is not None
                node.protocol.warm_start(topo)
    beat("warmup", sim)

    traffic_start = base + config.traffic_start
    fail_at = base + config.fail_time
    end_at = base + config.end_time

    # --- instrumentation ------------------------------------------------------
    tracker = ConvergenceTracker(bus, dest=receiver, src=sender)
    tracker.seed_from_network(network)
    net_watcher = NetworkConvergenceWatcher(bus)
    drop_counter = DropCounter(bus, window_start=fail_at)
    message_counter = MessageCounter(bus, window_start=fail_at)
    # Whole-run overhead for the MANET triple: NRL counts every control
    # packet the protocol ever sent, not just the post-failure window.
    overhead_counter = MessageCounter(bus)

    sink = PacketSink(flow_id=1, ttl_at_send=config.ttl)
    network.node(receiver).attach_app(sink)
    flow = FlowSpec(
        flow_id=1,
        src=sender,
        dst=receiver,
        rate_pps=config.rate_pps,
        start=traffic_start,
        stop=end_at,
        packet_bytes=config.packet_bytes,
        ttl=config.ttl,
    )
    source = CbrSource(sim, network, flow)
    source.start()

    detect_at = fail_at + config.detection_delay
    scheduler = LinkScheduler(sim, network, detection_delay=config.detection_delay)
    if driver_factory is None:
        driver: TopologyDriver = SingleLinkFailureDriver(failed, fail_at)
    else:
        driver = driver_factory(
            ScenarioPlan(
                topology=topo,
                sender=sender,
                receiver=receiver,
                pre_path=tuple(pre_path),
                failed=failed,
                fail_at=fail_at,
                detect_at=detect_at,
                end_at=end_at,
            )
        )
    scheduled = scheduler.run_driver(driver, until=end_at)
    first_at = scheduled[0].time if scheduled else fail_at
    detect_times = [
        e.time
        + (
            e.detection_delay
            if e.detection_delay is not None
            else config.detection_delay
        )
        for e in scheduled
    ]
    first_detect = detect_times[0] if detect_times else detect_at

    if monitors is not None:
        from ..validation.monitors import RunContext, settle_margin_for

        monitors.attach(
            RunContext(
                sim=sim,
                network=network,
                bus=bus,
                topology=topo,
                protocol=protocol,
                failed_links=tuple(
                    sorted({e.link_key for e in scheduled if e.kind == "fail"})
                ),
                detect_time=first_detect,
                end_time=end_at,
                infinity=(
                    config.dv_infinity
                    if protocol in ("rip", "rip-hd", "dbf")
                    else None
                ),
                settle_margin=settle_margin_for(protocol),
                # One CBR flow: the receiver is the only destination data
                # wants, which is what reactive protocols are judged on.
                active_dests=frozenset({receiver}),
            )
        )

    # --- run ------------------------------------------------------------------
    # The run is split at the same instants whether observed or not: repeated
    # ``run(until=...)`` calls form one contiguous timeline, so the event
    # order is identical to a single ``run(until=end_at)`` (the golden on/off
    # test pins this).
    with profiler.span("steady", sim=sim):
        sim.run(until=min(first_at, end_at))
    beat("steady", sim)
    with profiler.span("failure", sim=sim):
        sim.run(until=min(first_detect, end_at))
    beat("failure", sim)
    with profiler.span("convergence", sim=sim):
        sim.run(until=end_at)
    beat("convergence", sim)

    with profiler.span("drain", sim=sim):
        deliveries = sink.stats.deliveries
        waves = attribute_waves(detect_times, net_watcher.change_times, end_at)
        outcomes = tuple(
            TopologyEventOutcome(
                kind=e.kind,
                link=e.link_key,
                time=e.time,
                detect_time=dt,
                wave_start=w[0],
                wave_end=w[1],
            )
            for e, dt, w in zip(scheduled, detect_times, waves)
        )
        result = ScenarioResult(
            protocol=protocol,
            degree=degree,
            seed=seed,
            sender=sender,
            receiver=receiver,
            initial_path=tuple(pre_path),
            expected_final_path=tuple(expected_final) if expected_final else None,
            events=outcomes,
            sent=source.sent,
            delivered=sink.stats.delivered,
            drops_no_route=drop_counter.no_route,
            drops_ttl=drop_counter.ttl_expired,
            drops_link_down=drop_counter.link_down,
            drops_queue=drop_counter.queue_overflow,
            routing_convergence=net_watcher.convergence_time(first_detect),
            destination_convergence=tracker.routing_convergence_time(first_detect),
            forwarding_convergence=tracker.forwarding_convergence_delay(first_detect),
            converged_to_expected=(
                tracker.converged_to(tuple(expected_final)) if expected_final else False
            ),
            transient_path_count=len(tracker.transient_paths(first_at)),
            throughput=throughput_series(
                deliveries, traffic_start, end_at, origin=first_at
            ),
            delay=delay_series(deliveries, traffic_start, end_at, origin=first_at),
            messages=message_counter.messages,
            withdrawals=message_counter.withdrawals,
            reordering=analyze_reordering(deliveries),
            manet=analyze_manet(
                source.sent,
                deliveries,
                overhead_counter.messages,
                control_bytes=overhead_counter.bytes_sent,
            ),
        )
        if config.record_paths:
            steady_hops = len(pre_path) - 2  # forwarding hops on the original path
            result.loop_report = analyze_deliveries(
                deliveries, shortest_hops=steady_hops
            )
        if monitors is not None:
            result.violations = tuple(str(v) for v in monitors.finalize())
            result.monitor_skips = dict(monitors.skips)
        if result.violations and recorder is not None and dump_dir is not None:
            os.makedirs(dump_dir, exist_ok=True)
            dump = build_dump(
                recorder,
                meta={
                    "protocol": protocol,
                    "degree": degree,
                    "seed": seed,
                    "sender": sender,
                    "receiver": receiver,
                    "failed_link": list(failed),
                    "fail_time": fail_at,
                    "detect_time": first_detect,
                    "end_time": end_at,
                    "events": [
                        [e.kind, e.a, e.b, e.time] for e in scheduled
                    ],
                },
                violations=result.violations,
                counters=bus.counters.as_dict(),
            )
            path = os.path.join(
                dump_dir, f"flight-{protocol}-d{degree}-s{seed}.json"
            )
            save_dump(dump, path)
            result.dump_path = path
    if recorder is not None:
        recorder.close()
    drop_counter.close()
    message_counter.close()
    overhead_counter.close()
    if obs is not None:
        obs.finalize(sim=sim, network=network, bus=bus)
    if log is not None:
        for finding in result.violations:
            log.violation(str(finding))
        log.end(ok=not result.violations)
        if owns_log:
            log.close()
    return result
