"""Multi-run experiment driver with per-point aggregation.

The paper reports each data point as the average of 10 independent runs
(different random sender/receiver attachments, failed link, and timer
jitter).  :func:`run_point` does exactly that for one (protocol, degree)
pair; :func:`run_sweep` covers a whole figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..metrics.timeseries import BinnedSeries, average_series
from .config import ExperimentConfig
from .scenario import ScenarioResult, run_scenario

__all__ = ["PointResult", "run_point", "run_sweep"]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class PointResult:
    """Aggregated measurements for one (protocol, degree) data point."""

    protocol: str
    degree: int
    runs: list[ScenarioResult] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def mean_drops_no_route(self) -> float:
        return _mean([r.drops_no_route for r in self.runs])

    @property
    def mean_drops_ttl(self) -> float:
        return _mean([r.drops_ttl for r in self.runs])

    @property
    def mean_total_drops(self) -> float:
        return _mean([r.total_drops for r in self.runs])

    @property
    def mean_delivery_ratio(self) -> float:
        return _mean([r.delivery_ratio for r in self.runs])

    @property
    def mean_routing_convergence(self) -> float:
        return _mean([r.routing_convergence for r in self.runs])

    @property
    def mean_forwarding_convergence(self) -> float:
        return _mean([r.forwarding_convergence for r in self.runs])

    @property
    def mean_messages(self) -> float:
        return _mean([float(r.messages) for r in self.runs])

    @property
    def mean_transient_paths(self) -> float:
        return _mean([float(r.transient_path_count) for r in self.runs])

    @property
    def convergence_success_rate(self) -> float:
        return _mean([1.0 if r.converged_to_expected else 0.0 for r in self.runs])

    def mean_throughput(self) -> BinnedSeries:
        """Run-averaged instantaneous throughput (Figure 5 curves)."""
        return average_series([r.throughput for r in self.runs if r.throughput])

    def mean_delay(self) -> BinnedSeries:
        """Run-averaged instantaneous delay (Figure 7 curves)."""
        return average_series([r.delay for r in self.runs if r.delay])


def run_point(
    protocol: str,
    degree: int,
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> PointResult:
    """Run ``config.runs`` seeds of one (protocol, degree) experiment.

    ``workers > 1`` fans the seeds out over a process pool — each simulation
    is single-threaded and independent, so sweeps parallelize perfectly.
    """
    config = config or ExperimentConfig.quick()
    point = PointResult(protocol=protocol, degree=degree)
    seeds = [config.seed + i for i in range(config.runs)]
    if workers <= 1 or config.runs == 1:
        for seed in seeds:
            point.runs.append(run_scenario(protocol, degree, seed, config))
        return point
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_scenario, protocol, degree, seed, config)
            for seed in seeds
        ]
        point.runs.extend(f.result() for f in futures)
    return point


def run_sweep(
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> dict[tuple[str, int], PointResult]:
    """Full (protocol x degree) sweep; keys are (protocol, degree)."""
    config = config or ExperimentConfig.quick()
    results: dict[tuple[str, int], PointResult] = {}
    for protocol in config.protocols:
        for degree in config.degrees:
            results[(protocol, degree)] = run_point(
                protocol, degree, config, workers=workers
            )
    return results
