"""Multi-run experiment driver with per-point aggregation.

The paper reports each data point as the average of 10 independent runs
(different random sender/receiver attachments, failed link, and timer
jitter).  :func:`run_point` does exactly that for one (protocol, degree)
pair; :func:`run_sweep` covers a whole figure.

Parallel topology: the whole (protocol x degree x seed) grid is flattened
into one task list and submitted to a single shared
``ProcessPoolExecutor`` — workers stay warm across the entire sweep instead
of being forked and torn down per data point.  A seed that crashes inside a
worker is captured as a :class:`SweepFailure` on its point (with the failing
seed in the message) rather than killing the sweep.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Optional

from ..metrics.timeseries import BinnedSeries, average_series
from .config import ExperimentConfig
from .scenario import ScenarioResult, run_scenario

__all__ = ["PointResult", "SweepFailure", "run_point", "run_sweep"]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class SweepFailure:
    """One seed that raised instead of producing a ScenarioResult."""

    protocol: str
    degree: int
    seed: int
    error: str

    def __str__(self) -> str:
        return (
            f"{self.protocol} degree={self.degree} seed={self.seed} "
            f"failed: {self.error}"
        )


@dataclass
class PointResult:
    """Aggregated measurements for one (protocol, degree) data point."""

    protocol: str
    degree: int
    runs: list[ScenarioResult] = field(default_factory=list)
    #: Seeds that crashed (sweeps keep going; see :class:`SweepFailure`).
    failures: list[SweepFailure] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def mean_drops_no_route(self) -> float:
        return _mean([r.drops_no_route for r in self.runs])

    @property
    def mean_drops_ttl(self) -> float:
        return _mean([r.drops_ttl for r in self.runs])

    @property
    def mean_total_drops(self) -> float:
        return _mean([r.total_drops for r in self.runs])

    @property
    def mean_delivery_ratio(self) -> float:
        return _mean([r.delivery_ratio for r in self.runs])

    @property
    def mean_routing_convergence(self) -> float:
        return _mean([r.routing_convergence for r in self.runs])

    @property
    def mean_forwarding_convergence(self) -> float:
        return _mean([r.forwarding_convergence for r in self.runs])

    @property
    def mean_messages(self) -> float:
        return _mean([float(r.messages) for r in self.runs])

    @property
    def mean_transient_paths(self) -> float:
        return _mean([float(r.transient_path_count) for r in self.runs])

    @property
    def convergence_success_rate(self) -> float:
        return _mean([1.0 if r.converged_to_expected else 0.0 for r in self.runs])

    @property
    def violations(self) -> list[str]:
        """Invariant-monitor findings across all runs (validated runs only;
        see ``ExperimentConfig.validate``), each prefixed with its seed."""
        return [f"seed {r.seed}: {v}" for r in self.runs for v in r.violations]

    def mean_throughput(self) -> BinnedSeries:
        """Run-averaged instantaneous throughput (Figure 5 curves)."""
        return average_series([r.throughput for r in self.runs if r.throughput])

    def mean_delay(self) -> BinnedSeries:
        """Run-averaged instantaneous delay (Figure 7 curves)."""
        return average_series([r.delay for r in self.runs if r.delay])


def _run_task(
    protocol: str, degree: int, seed: int, config: ExperimentConfig
):
    """Pool worker: run one seed, returning the result or a SweepFailure.

    Exceptions are converted to data (not re-raised) so one bad seed cannot
    tear down the shared pool or lose the identity of the seed that died.
    """
    try:
        return run_scenario(protocol, degree, seed, config)
    except Exception as exc:  # noqa: BLE001 - must survive arbitrary seed crashes
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return SweepFailure(protocol=protocol, degree=degree, seed=seed, error=detail)


def _run_task_tuple(task: tuple[str, int, int, ExperimentConfig]):
    """map()-friendly wrapper around :func:`_run_task`."""
    return _run_task(*task)


def run_point(
    protocol: str,
    degree: int,
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> PointResult:
    """Run ``config.runs`` seeds of one (protocol, degree) experiment.

    ``workers > 1`` fans the seeds out over a process pool — each simulation
    is single-threaded and independent, so sweeps parallelize perfectly.
    A worker that raises is re-raised here with the failing seed named.
    """
    config = config or ExperimentConfig.quick()
    point = PointResult(protocol=protocol, degree=degree)
    seeds = [config.seed + i for i in range(config.runs)]
    if workers <= 1 or config.runs == 1:
        for seed in seeds:
            try:
                point.runs.append(run_scenario(protocol, degree, seed, config))
            except Exception as exc:
                raise RuntimeError(
                    f"run_point({protocol!r}, degree={degree}) seed {seed} "
                    f"failed: {exc}"
                ) from exc
        return point
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_task, protocol, degree, seed, config)
            for seed in seeds
        ]
        for seed, future in zip(seeds, futures):
            outcome = future.result()
            if isinstance(outcome, SweepFailure):
                raise RuntimeError(str(outcome))
            point.runs.append(outcome)
    return point


def run_sweep(
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
) -> dict[tuple[str, int], PointResult]:
    """Full (protocol x degree) sweep; keys are (protocol, degree).

    The entire (protocol x degree x seed) grid is flattened and executed
    against one shared process pool (``workers > 1``), so pool startup is
    paid once per sweep, not once per point, and stragglers from one point
    overlap with the next point's seeds.  Crashed seeds are recorded on
    their point's ``failures`` list instead of aborting the sweep; results
    are collected in deterministic grid order either way.
    """
    config = config or ExperimentConfig.quick()
    seeds = [config.seed + i for i in range(config.runs)]
    results: dict[tuple[str, int], PointResult] = {
        (protocol, degree): PointResult(protocol=protocol, degree=degree)
        for protocol in config.protocols
        for degree in config.degrees
    }
    grid = [
        (protocol, degree, seed)
        for protocol in config.protocols
        for degree in config.degrees
        for seed in seeds
    ]
    if workers <= 1 or len(grid) == 1:
        for protocol, degree, seed in grid:
            outcome = _run_task(protocol, degree, seed, config)
            point = results[(protocol, degree)]
            if isinstance(outcome, SweepFailure):
                point.failures.append(outcome)
            else:
                point.runs.append(outcome)
        return results
    import concurrent.futures

    # Chunked map keeps per-task IPC low; results come back in grid order,
    # so aggregation is deterministic and identical to the serial path.
    chunksize = max(1, len(grid) // (workers * 4))
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = pool.map(
            _run_task_tuple,
            [(protocol, degree, seed, config) for protocol, degree, seed in grid],
            chunksize=chunksize,
        )
        for (protocol, degree, _seed), outcome in zip(grid, outcomes):
            point = results[(protocol, degree)]
            if isinstance(outcome, SweepFailure):
                point.failures.append(outcome)
            else:
                point.runs.append(outcome)
    return results
