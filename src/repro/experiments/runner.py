"""Multi-run experiment driver: aggregation, fault tolerance, durability.

The paper reports each data point as the average of 10 independent runs
(different random sender/receiver attachments, failed link, and timer
jitter).  :func:`run_point` does exactly that for one (protocol, degree)
pair; :func:`run_sweep` covers a whole figure.

Execution model: the whole (protocol x degree x seed) grid is flattened into
one task list and dispatched to a supervised pool of long-lived worker
processes.  The supervisor (not a bare ``ProcessPoolExecutor``) owns three
fault-tolerance guarantees paper-scale sweeps need:

* **Per-seed wall-clock timeout** — a hung seed is terminated with its
  worker, recorded as a :class:`SweepFailure`, and the pool keeps going.
* **Bounded retry of transient worker deaths** — a worker that dies mid-task
  (OOM kill, segfault, the ``BrokenProcessPool`` family) is respawned and
  the task retried with backoff up to ``retries`` times before a
  :class:`SweepFailure` is recorded.
* **Durable checkpointing** — with a :class:`~repro.experiments.store.SweepStore`
  attached, every completed seed is appended to the shard log the moment it
  finishes, and an interrupted sweep resumes by re-running only missing
  seeds.  Results are always assembled in canonical grid order, so a
  resumed sweep is bit-identical to an uninterrupted one.

A seed that *raises* inside a worker (as opposed to killing it) is captured
as a :class:`SweepFailure` on its point rather than aborting the sweep.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..metrics.timeseries import BinnedSeries, average_series
from .config import ExperimentConfig
from .scenario import ScenarioResult, run_scenario

__all__ = ["PointResult", "SweepFailure", "run_point", "run_sweep"]

#: One grid cell: (protocol, degree, seed).
Task = tuple[str, int, int]
#: What a completed task produced.
Outcome = Union[ScenarioResult, "SweepFailure"]
#: Per-task timing callback: (protocol, degree, seed, ok, elapsed_s,
#: attempts, timed_out).  See :class:`repro.obs.sweeps.SweepTelemetry`.
TimingCallback = Callable[[str, int, int, bool, Optional[float], int, bool], None]

#: Ceiling for the exponential retry backoff (seconds).
_MAX_RETRY_BACKOFF = 5.0
#: Supervisor polling tick (seconds): how often deadlines and worker
#: liveness are checked while waiting for results.
_SUPERVISOR_TICK = 0.05


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class SweepFailure:
    """One seed that failed instead of producing a ScenarioResult.

    Covers in-worker exceptions, per-seed timeouts, and workers that died
    and exhausted their retries; ``error`` says which.
    """

    protocol: str
    degree: int
    seed: int
    error: str

    def __str__(self) -> str:
        return (
            f"{self.protocol} degree={self.degree} seed={self.seed} "
            f"failed: {self.error}"
        )


@dataclass
class PointResult:
    """Aggregated measurements for one (protocol, degree) data point."""

    protocol: str
    degree: int
    runs: list[ScenarioResult] = field(default_factory=list)
    #: Seeds that failed (sweeps keep going; see :class:`SweepFailure`).
    failures: list[SweepFailure] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def mean_drops_no_route(self) -> float:
        return _mean([r.drops_no_route for r in self.runs])

    @property
    def mean_drops_ttl(self) -> float:
        return _mean([r.drops_ttl for r in self.runs])

    @property
    def mean_total_drops(self) -> float:
        return _mean([r.total_drops for r in self.runs])

    @property
    def mean_delivery_ratio(self) -> float:
        return _mean([r.delivery_ratio for r in self.runs])

    @property
    def mean_routing_convergence(self) -> float:
        return _mean([r.routing_convergence for r in self.runs])

    @property
    def mean_forwarding_convergence(self) -> float:
        return _mean([r.forwarding_convergence for r in self.runs])

    @property
    def mean_messages(self) -> float:
        return _mean([float(r.messages) for r in self.runs])

    @property
    def mean_transient_paths(self) -> float:
        return _mean([float(r.transient_path_count) for r in self.runs])

    @property
    def convergence_success_rate(self) -> float:
        return _mean([1.0 if r.converged_to_expected else 0.0 for r in self.runs])

    @property
    def violations(self) -> list[str]:
        """Invariant-monitor findings across all runs (validated runs only;
        see ``ExperimentConfig.validate``), each prefixed with its seed."""
        return [f"seed {r.seed}: {v}" for r in self.runs for v in r.violations]

    def mean_throughput(self) -> BinnedSeries:
        """Run-averaged instantaneous throughput (Figure 5 curves)."""
        return average_series([r.throughput for r in self.runs if r.throughput])

    def mean_delay(self) -> BinnedSeries:
        """Run-averaged instantaneous delay (Figure 7 curves)."""
        return average_series([r.delay for r in self.runs if r.delay])


def _run_task(
    protocol: str,
    degree: int,
    seed: int,
    config: ExperimentConfig,
    dump_dir: Optional[str] = None,
) -> Outcome:
    """Run one seed, returning the result or a SweepFailure.

    Exceptions are converted to data (not re-raised) so one bad seed cannot
    tear down the pool or lose the identity of the seed that died.
    ``dump_dir`` arms per-seed post-mortem flight dumps (see
    :func:`repro.experiments.scenario.run_scenario`).
    """
    # Test-only pacing hook: slows each seed so the kill-and-resume tests
    # can deterministically interrupt a sweep mid-flight.  Inert when unset.
    pace = os.environ.get("REPRO_TEST_SLEEP_SECONDS")
    if pace:
        time.sleep(float(pace))
    try:
        return run_scenario(protocol, degree, seed, config, dump_dir=dump_dir)
    except Exception as exc:  # noqa: BLE001 - must survive arbitrary seed crashes
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return SweepFailure(protocol=protocol, degree=degree, seed=seed, error=detail)


# --------------------------------------------------------------------------
# Supervised worker pool
# --------------------------------------------------------------------------


def _fault_injection(protocol: str, degree: int, seed: int) -> None:
    """Test-only fault hooks, inert unless the REPRO_TEST_* env vars are set.

    The fault-tolerance paths (hung seed, dying worker) cannot be triggered
    from a well-behaved simulation, so the tests inject them here:

    * ``REPRO_TEST_HANG_SEEDS="3,4"`` — those seeds sleep forever (exercises
      the per-seed timeout).
    * ``REPRO_TEST_DIE_ONCE_DIR=/dir`` — every task kills its worker on the
      first attempt, then runs normally (exercises retry/respawn); the
      directory holds the per-task "already died" markers.
    """
    hang = os.environ.get("REPRO_TEST_HANG_SEEDS")
    if hang and seed in {int(s) for s in hang.split(",") if s.strip()}:
        time.sleep(3600.0)
    die_dir = os.environ.get("REPRO_TEST_DIE_ONCE_DIR")
    if die_dir:
        marker = os.path.join(die_dir, f"{protocol}-{degree}-{seed}")
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
            os._exit(43)


def _worker_main(
    task_q,
    result_q,
    config: ExperimentConfig,
    parent_pid: int,
    dump_dir: Optional[str] = None,
) -> None:
    """Long-lived pool worker: pull tasks, push (task, outcome) tuples.

    SIGINT is ignored so Ctrl-C interrupts only the supervisor, which then
    flushes shards and tears the pool down in order.  The periodic ppid
    check lets a worker exit on its own if the supervisor was killed
    without cleanup (SIGKILL), instead of leaking as a blocked orphan.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    import queue as queue_mod

    while True:
        try:
            task = task_q.get(timeout=1.0)
        except queue_mod.Empty:
            if os.getppid() != parent_pid:
                return
            continue
        if task is None:
            return
        protocol, degree, seed = task
        _fault_injection(protocol, degree, seed)
        started = time.perf_counter()
        outcome = _run_task(protocol, degree, seed, config, dump_dir)
        elapsed = time.perf_counter() - started
        try:
            result_q.put((protocol, degree, seed, outcome, elapsed))
        except Exception:
            return  # supervisor is gone; nothing left to report to


class _Worker:
    """Supervisor-side handle for one worker process."""

    __slots__ = ("proc", "task_q", "task", "started")

    def __init__(self, proc, task_q) -> None:
        self.proc = proc
        self.task_q = task_q
        self.task: Optional[Task] = None
        self.started = 0.0


def _execute_supervised(
    tasks: list[Task],
    config: ExperimentConfig,
    workers: int,
    timeout: Optional[float],
    retries: int,
    retry_backoff: float,
    on_outcome: Callable[[Task, Outcome], None],
    on_timing: Optional[TimingCallback] = None,
    dump_dir: Optional[str] = None,
) -> None:
    """Run ``tasks`` on a supervised pool, reporting each outcome as it lands.

    ``on_outcome`` is called exactly once per task, in completion order —
    this is where the sweep store appends its shard records.  ``on_timing``
    (if given) is called right after it with the task's in-worker wall time
    (``None`` when the worker died or timed out before reporting), attempt
    count, and whether the task hit the wall-clock timeout.  Deadline and
    liveness checks run every ``_SUPERVISOR_TICK`` seconds between result
    arrivals.

    Abrupt worker death — a crash, an OOM kill, or our own timeout
    ``terminate()`` — is handled by discarding the *whole* pool, shared
    result queue included, and respawning it.  A ``multiprocessing.Queue``
    put happens in a background feeder thread under a cross-process lock; a
    worker that dies between writing the pipe and releasing that lock
    leaves the lock held forever, silently wedging every other worker's
    next result (the same hazard that makes ``concurrent.futures`` declare
    its pool broken).  Rebuilding sidesteps the poisoned queue entirely:
    in-flight tasks whose results may have been lost are simply re-run,
    which is safe because every seed is deterministic.
    """
    import multiprocessing as mp
    import queue as queue_mod

    ctx = mp.get_context()
    pending: deque[Task] = deque(tasks)
    done: set[Task] = set()
    attempts: dict[Task, int] = {}
    n_workers = max(1, min(workers, len(tasks)))

    result_q = ctx.Queue()

    def spawn() -> _Worker:
        task_q = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main,
            args=(task_q, result_q, config, os.getpid(), dump_dir),
            daemon=True,
        )
        proc.start()
        return _Worker(proc, task_q)

    def kill(worker: _Worker) -> None:
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(timeout=2.0)
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(timeout=1.0)
        worker.task_q.cancel_join_thread()
        worker.task_q.close()

    def record(
        task: Task,
        outcome: Outcome,
        elapsed: Optional[float],
        timed_out: bool = False,
    ) -> None:
        if task not in done:
            done.add(task)
            on_outcome(task, outcome)
            if on_timing is not None:
                on_timing(
                    *task,
                    not isinstance(outcome, SweepFailure),
                    elapsed,
                    attempts.get(task, 0) + 1,
                    timed_out,
                )

    pool = [spawn() for _ in range(n_workers)]

    def rebuild() -> None:
        """Tear down the pool and its (possibly poisoned) result queue.

        Every in-flight task that has no recorded outcome goes back to
        ``pending`` — its result may be stuck in a dead worker's feeder
        buffer or behind a leaked queue lock, and re-running it is
        deterministic.  ``record``'s first-wins guard makes a re-run of a
        task whose original result *does* still arrive harmless (it
        cannot: the old queue is discarded unread).
        """
        nonlocal pool, result_q
        for worker in pool:
            kill(worker)
        result_q.cancel_join_thread()
        result_q.close()
        for worker in pool:
            if worker.task is not None and worker.task not in done:
                pending.appendleft(worker.task)
        result_q = ctx.Queue()
        pool = [spawn() for _ in range(n_workers)]

    try:
        while len(done) < len(tasks):
            # Dispatch: hand every idle worker the next pending task.
            for worker in pool:
                if worker.task is None and pending:
                    worker.task = pending.popleft()
                    worker.started = time.monotonic()
                    worker.task_q.put(worker.task)
            # Collect one result; the short tick keeps health checks live.
            try:
                protocol, degree, seed, outcome, elapsed = result_q.get(
                    timeout=_SUPERVISOR_TICK
                )
            except queue_mod.Empty:
                pass
            else:
                task = (protocol, degree, seed)
                for worker in pool:
                    if worker.task == task:
                        worker.task = None
                        break
                record(task, outcome, elapsed)
                continue
            # Health checks: deadlines first, then liveness.  Any abrupt
            # death or deadline kill invalidates the pool, so handle one
            # event per tick and restart the loop on a fresh pool.
            now = time.monotonic()
            for worker in pool:
                task = worker.task
                if task is None:
                    if not worker.proc.is_alive():
                        rebuild()  # even an idle death can wedge the queue
                        break
                    continue
                if timeout is not None and now - worker.started >= timeout:
                    record(
                        task,
                        SweepFailure(
                            *task,
                            error=(
                                f"seed exceeded the {timeout:g}s wall-clock "
                                "timeout; worker terminated"
                            ),
                        ),
                        None,
                        timed_out=True,
                    )
                    rebuild()
                    break
                if not worker.proc.is_alive():
                    # Worker died mid-task (crash/OOM/kill): bounded retry.
                    exitcode = worker.proc.exitcode
                    n = attempts.get(task, 0) + 1
                    attempts[task] = n
                    if n <= retries:
                        time.sleep(
                            min(retry_backoff * (2 ** (n - 1)), _MAX_RETRY_BACKOFF)
                        )
                    else:
                        record(
                            task,
                            SweepFailure(
                                *task,
                                error=(
                                    f"worker died (exit code {exitcode}) and "
                                    f"retries were exhausted after "
                                    f"{n} attempt(s)"
                                ),
                            ),
                            None,
                        )
                    rebuild()
                    break
    finally:
        for worker in pool:
            kill(worker)
        result_q.cancel_join_thread()
        result_q.close()


# --------------------------------------------------------------------------
# Public drivers
# --------------------------------------------------------------------------


def run_point(
    protocol: str,
    degree: int,
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
    strict: bool = False,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> PointResult:
    """Run ``config.runs`` seeds of one (protocol, degree) experiment.

    ``workers > 1`` fans the seeds out over a supervised process pool — each
    simulation is single-threaded and independent, so sweeps parallelize
    perfectly.  Failed seeds are recorded on ``PointResult.failures`` and
    the remaining seeds still run, matching :func:`run_sweep`; pass
    ``strict=True`` for the old fail-fast behavior (raise ``RuntimeError``
    naming the first failed seed).

    ``timeout`` (wall-clock seconds per seed) and ``retries`` (transient
    worker deaths) are honored whenever the pool runs — a serial in-process
    run cannot preempt a hung simulation, so ``timeout`` with ``workers <= 1``
    still routes through a one-worker pool.
    """
    config = config or ExperimentConfig.quick()
    point = PointResult(protocol=protocol, degree=degree)
    seeds = config.seeds
    if workers <= 1 and timeout is None:
        for seed in seeds:
            outcome = _run_task(protocol, degree, seed, config)
            if isinstance(outcome, SweepFailure):
                if strict:
                    raise RuntimeError(
                        f"run_point({protocol!r}, degree={degree}) seed {seed} "
                        f"failed: {outcome.error}"
                    )
                point.failures.append(outcome)
            else:
                point.runs.append(outcome)
        return point
    outcomes: dict[Task, Outcome] = {}
    _execute_supervised(
        [(protocol, degree, seed) for seed in seeds],
        config,
        workers,
        timeout,
        retries,
        retry_backoff=0.5,
        on_outcome=outcomes.__setitem__,
    )
    for seed in seeds:
        outcome = outcomes[(protocol, degree, seed)]
        if isinstance(outcome, SweepFailure):
            if strict:
                raise RuntimeError(str(outcome))
            point.failures.append(outcome)
        else:
            point.runs.append(outcome)
    return point


def _assemble(
    grid: list[Task],
    outcomes: dict[Task, Outcome],
    config: ExperimentConfig,
) -> dict[tuple[str, int], PointResult]:
    """Fold task outcomes into per-point results, in canonical grid order.

    Completion order is nondeterministic under a pool (and shard order
    reflects it); assembling strictly in grid order makes the aggregate —
    and anything serialized from it — independent of scheduling, which is
    what lets a resumed sweep match an uninterrupted one byte for byte.
    """
    results: dict[tuple[str, int], PointResult] = {
        (protocol, degree): PointResult(protocol=protocol, degree=degree)
        for protocol in config.protocols
        for degree in config.degrees
    }
    for task in grid:
        outcome = outcomes.get(task)
        if outcome is None:
            continue  # interrupted before this task completed
        point = results[(task[0], task[1])]
        if isinstance(outcome, SweepFailure):
            point.failures.append(outcome)
        else:
            point.runs.append(outcome)
    return results


def run_sweep(
    config: Optional[ExperimentConfig] = None,
    workers: int = 1,
    store=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    retry_backoff: float = 0.5,
    progress: Optional[Callable[[int, int, str], None]] = None,
    telemetry=None,
    dump_dir: Optional[str] = None,
    live_log=None,
) -> dict[tuple[str, int], PointResult]:
    """Full (protocol x degree) sweep; keys are (protocol, degree).

    The entire (protocol x degree x seed) grid is flattened and executed
    against one supervised worker pool (``workers > 1``), so pool startup is
    paid once per sweep and stragglers from one point overlap with the next
    point's seeds.  Failed seeds are recorded on their point's ``failures``
    list instead of aborting the sweep; results are assembled in
    deterministic grid order either way.

    Durability: pass ``store`` (a :class:`~repro.experiments.store.SweepStore`
    or a directory path) to checkpoint every completed seed as an
    append-only shard record.  Re-running with the same store and config
    resumes the sweep, executing only the missing seeds; the assembled
    result is bit-identical to an uninterrupted run.  On SIGINT the shard
    log is flushed before ``KeyboardInterrupt`` propagates, so nothing
    completed is ever lost.

    Fault tolerance (pool runs): ``timeout`` bounds each seed's wall-clock
    time (a hung seed becomes a :class:`SweepFailure`; the pool keeps
    going), and a worker that dies mid-task is respawned and its task
    retried up to ``retries`` times with exponential backoff starting at
    ``retry_backoff`` seconds.  ``progress(completed, total, message)`` is
    invoked after every task.

    Telemetry: pass ``telemetry`` (a :class:`repro.obs.sweeps.SweepTelemetry`)
    to collect per-seed wall times, worker utilisation, and fault counts.
    With a store attached, each seed's timing is also appended to the shard
    log as a ``{"kind": "telemetry"}`` record; result loading skips those, so
    telemetry never perturbs resumed-sweep identity.

    Post-mortems: ``dump_dir`` names a directory for per-seed flight dumps
    written whenever a validation monitor fires (see
    :func:`repro.experiments.scenario.run_scenario`).  For validated sweeps
    with a store attached it defaults to the store's own directory, so
    dumps land next to the sweep checkpoint they explain;
    ``ScenarioResult.dump_path`` (persisted in the shard log) names each
    file.

    Live telemetry: ``live_log`` (a path or an open
    :class:`~repro.obs.live.RunEventLog`) streams the sweep's lifecycle as
    it executes — a ``sweep begin`` record, one ``seed`` record per
    completed task (with done/total progress), a ``violation`` record per
    monitor finding, and a ``sweep end`` record — so ``python -m repro
    watch`` can follow the sweep from another process.  Records ride the
    same ``on_outcome``/``on_timing`` callbacks the store and telemetry
    use; the simulations themselves are untouched (resumed-sweep identity
    and golden metrics stay byte-identical).
    """
    from ..obs.live import open_live_log

    config = config or ExperimentConfig.quick()
    grid = config.grid()
    log, owns_log = open_live_log(
        live_log,
        run="sweep",
        meta={
            "protocols": list(config.protocols),
            "degrees": list(config.degrees),
            "runs": config.runs,
        },
    )
    sweep_started = time.perf_counter()

    if store is not None:
        from .store import SweepStore

        if not isinstance(store, SweepStore):
            store = SweepStore(store)
        store.open(config)
        outcomes: dict[Task, Outcome] = store.load_outcomes()
        todo = [task for task in grid if task not in outcomes]
        if dump_dir is None and config.validate:
            dump_dir = store.directory
    else:
        outcomes = {}
        todo = list(grid)

    if telemetry is not None:
        telemetry.begin(
            workers=workers,
            total_tasks=len(grid),
            resumed_tasks=len(grid) - len(todo),
        )
    if log is not None:
        log.sweep(
            "begin",
            total_tasks=len(grid),
            resumed_tasks=len(grid) - len(todo),
            workers=workers,
        )

    def on_outcome(task: Task, outcome: Outcome) -> None:
        outcomes[task] = outcome
        if store is not None:
            store.append(outcome)
        if log is not None and not isinstance(outcome, SweepFailure):
            for finding in outcome.violations:
                log.violation(
                    f"{task[0]} degree={task[1]} seed={task[2]}: {finding}"
                )
        if progress is not None:
            label = "failed" if isinstance(outcome, SweepFailure) else "ok"
            progress(
                len(outcomes),
                len(grid),
                f"{task[0]} degree={task[1]} seed={task[2]}: {label}",
            )

    def on_timing(
        protocol: str,
        degree: int,
        seed: int,
        ok: bool,
        elapsed_s: Optional[float],
        attempts: int = 1,
        timed_out: bool = False,
    ) -> None:
        if log is not None:
            # on_outcome has already run for this task (record() orders the
            # callbacks), so len(outcomes) counts it as done.
            log.seed(
                protocol,
                degree,
                seed,
                ok=ok,
                elapsed_s=elapsed_s,
                attempts=attempts,
                timed_out=timed_out,
                done=len(outcomes),
                total=len(grid),
            )
        if telemetry is None:
            return
        timing = telemetry.record(
            protocol, degree, seed, ok, elapsed_s, attempts, timed_out
        )
        if store is not None:
            store.append_telemetry(timing.to_dict())

    try:
        if todo:
            if workers <= 1 and timeout is None:
                for task in todo:
                    started = time.perf_counter()
                    outcome = _run_task(*task, config, dump_dir)
                    elapsed = time.perf_counter() - started
                    on_outcome(task, outcome)
                    on_timing(
                        *task, not isinstance(outcome, SweepFailure), elapsed
                    )
            else:
                _execute_supervised(
                    todo, config, workers, timeout, retries, retry_backoff,
                    on_outcome,
                    on_timing=(
                        None
                        if telemetry is None and log is None
                        else on_timing
                    ),
                    dump_dir=dump_dir,
                )
    except (KeyboardInterrupt, SystemExit):
        # Graceful interrupt: everything already completed is flushed (and
        # fsynced) before the exception propagates, so a Ctrl-C'd sweep
        # resumes exactly where it stopped.
        if telemetry is not None:
            telemetry.end()
        if store is not None:
            store.close()
        if log is not None:
            log.sweep("end", wall_s=time.perf_counter() - sweep_started)
            log.end(ok=False, error="interrupted")
            if owns_log:
                log.close()
        raise
    if telemetry is not None:
        telemetry.end()
    if store is not None:
        store.close()
    if log is not None:
        log.sweep("end", wall_s=time.perf_counter() - sweep_started)
        log.end(ok=True)
        if owns_log:
            log.close()
    return _assemble(grid, outcomes, config)
