"""Experiment configuration.

Two profiles:

* ``ExperimentConfig.paper()`` — the paper's setup: 7x7 mesh, degrees 3-8,
  10 runs per point, 100 pkt/s CBR, 70 s post-failure observation (covers
  RIP's 30 s periodic recovery and BGP's ~30 s MRAI loops).
* ``ExperimentConfig.quick()`` — same protocol timers (those are the physics
  under study), but fewer runs/degrees and a lighter packet rate, for tests
  and benchmarks.

Timeline (warm-started runs): protocols are installed converged at t=0,
traffic starts at ``traffic_start``, the failure fires at ``fail_time``, and
the run ends at ``fail_time + post_fail_window``.  All reported series are
normalized so the failure is at t=0.

Note on the distance-vector infinity: the RFC value 16 is the protocol
default, but a degree-3 7x7 mesh plus two host access links can reach path
costs near 16, so experiments use 32 to keep "unreachable" meaning what the
paper meant (see DESIGN.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from ..net.failure import DEFAULT_DETECTION_DELAY
from ..net.link import DEFAULT_QUEUE_CAPACITY

__all__ = ["ExperimentConfig", "PROTOCOL_NAMES"]

#: Protocols reproducible from the paper plus this package's extensions.
PROTOCOL_NAMES = (
    "rip",
    "rip-hd",
    "dbf",
    "dual",
    "bgp",
    "bgp3",
    "spf",
    "spf-slow",
    "spf-lfa",
    "bgp-pd",
    "bgp3-pd",
    "bgp-rfd",
    "bgp3-rfd",
    "bgp-ssld",
    "bgp3-ssld",
    "static",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs for one figure-style experiment sweep."""

    # Topology.
    rows: int = 7
    cols: int = 7
    degrees: tuple[int, ...] = (3, 4, 5, 6, 7, 8)

    # Protocols under study (names from PROTOCOL_NAMES).
    protocols: tuple[str, ...] = ("rip", "dbf", "bgp", "bgp3")

    # Statistical replication.
    runs: int = 10
    seed: int = 1

    # Timeline (seconds).
    traffic_start: float = 5.0
    fail_time: float = 10.0
    post_fail_window: float = 70.0

    # Traffic.  20 pkt/s of 64-byte packets keeps the flow (and any transient
    # forwarding loop, whose per-link hop rate is ~rate*TTL/2) well under the
    # 1 Mbps link capacity, so convergence-period losses are attributable to
    # routing (NO_ROUTE, TTL_EXPIRED) rather than congestion — the loss causes
    # the paper studies.  See DESIGN.md "Parameter reconstruction".
    rate_pps: float = 20.0
    packet_bytes: int = 64
    ttl: int = 127

    # Substrate.
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY
    detection_delay: float = DEFAULT_DETECTION_DELAY
    # Strict-priority queueing for routing messages (control-plane protection
    # ablation; the paper's simulator shares one FIFO, our default too).
    prioritize_control: bool = False

    # Distance-vector infinity for RIP/DBF (see module docstring).
    dv_infinity: int = 32

    # True = cold start with a convergence warm-up instead of analytic warm start.
    cold_start: bool = False
    cold_warmup: float = 390.0

    # Record per-packet hop traces (needed for loop analysis; costs memory).
    record_paths: bool = False

    # Attach the online invariant monitors (repro.validation) to every run;
    # violations land on ScenarioResult.violations.  Costs per-packet record
    # allocation plus an end-of-run SPF oracle diff.
    validate: bool = False

    def __post_init__(self) -> None:
        if self.rows < 3 or self.cols < 3:
            raise ValueError("mesh must be at least 3x3")
        if not self.degrees:
            raise ValueError("no degrees to sweep")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if not 0 < self.traffic_start < self.fail_time:
            raise ValueError("need 0 < traffic_start < fail_time")
        if self.post_fail_window <= 0:
            raise ValueError("post_fail_window must be positive")
        unknown = set(self.protocols) - set(PROTOCOL_NAMES)
        if unknown:
            raise ValueError(f"unknown protocols: {sorted(unknown)}")

    @property
    def end_time(self) -> float:
        return self.fail_time + self.post_fail_window

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """Full paper-scale configuration."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Scaled-down profile for tests/benchmarks (same protocol timers)."""
        return cls(
            degrees=(3, 4, 5, 6),
            runs=3,
            post_fail_window=50.0,
        )

    def with_(self, **overrides) -> "ExperimentConfig":
        """Functional update helper."""
        return replace(self, **overrides)

    # -- durable-sweep support (manifests, resume) ---------------------------

    @property
    def seeds(self) -> tuple[int, ...]:
        """The per-point seed list (``seed``, ``seed+1``, ...)."""
        return tuple(self.seed + i for i in range(self.runs))

    def grid(self) -> list[tuple[str, int, int]]:
        """The full (protocol, degree, seed) task grid, in canonical order.

        This order is the contract for deterministic sweep assembly: results
        are always reported in grid order no matter which worker finished
        first, so interrupted-and-resumed sweeps aggregate identically to
        uninterrupted ones.
        """
        return [
            (protocol, degree, seed)
            for protocol in self.protocols
            for degree in self.degrees
            for seed in self.seeds
        ]

    def to_dict(self) -> dict:
        """JSON-ready representation (tuples become lists)."""
        return {
            key: (list(value) if isinstance(value, tuple) else value)
            for key, value in asdict(self).items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict` (e.g. from a sweep manifest)."""
        kwargs = dict(data)
        for key in ("degrees", "protocols"):
            if key in kwargs and kwargs[key] is not None:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Stable content hash; guards a checkpoint against config drift.

        A sweep store records this at creation and refuses to resume under a
        different configuration — mixed-config shards would silently corrupt
        the aggregate.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
