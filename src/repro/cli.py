"""Command-line interface.

Exposes the experiment harness without writing Python::

    python -m repro run --protocol dbf --degree 4 --seed 1
    python -m repro shard --protocol bgp3 --shards 3 --check  # sharded run
    python -m repro churn --protocol dbf --model waypoint --validate
    python -m repro figure 3                  # reproduce Figure 3's table
    python -m repro figure 5 --degrees 3 4 6  # throughput series
    python -m repro sweep --protocols rip dbf --degrees 3 4 5 6
    python -m repro sweep --checkpoint runs/ --workers 4   # durable, resumable
    python -m repro sweep --checkpoint runs/ --resume      # continue after a kill
    python -m repro topology --degree 5       # inspect a mesh
    python -m repro validate --seeds 25       # fuzzer + differential oracle
    python -m repro profile --out prof.json   # phase/metric/sweep telemetry
    python -m repro trace --packet 17         # hop-by-hop packet autopsy
    python -m repro trace --timeline          # causal convergence timeline
    python -m repro trace --dump flight.json  # read a post-mortem dump

Use ``--paper-scale`` for the full 10-seed configuration; the default is the
reduced quick profile.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments.config import (
    MOBILITY_MODELS,
    PARTITION_STRATEGIES,
    PROTOCOL_NAMES,
    ChurnConfig,
    ExperimentConfig,
)
from .experiments import figures as fig
from .experiments.report import format_series_grid, format_sweep_table
from .experiments.runner import run_sweep
from .experiments.scenario import run_scenario
from .sim.eventq import EVENT_QUEUE_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Packet delivery performance during routing convergence (DSN 2003)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="full 10-seed, degree 3-8 configuration (slow)",
    )
    parser.add_argument(
        "--queue",
        choices=EVENT_QUEUE_NAMES,
        default=None,
        help="event-queue backend (default: $REPRO_EVENT_QUEUE, then heap); "
        "results are identical under either, only speed differs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one scenario and print its outcome")
    run_p.add_argument("--protocol", choices=PROTOCOL_NAMES, default="dbf")
    run_p.add_argument("--degree", type=int, default=4)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--rate", type=float, help="packets/second")
    run_p.add_argument(
        "--live-log", metavar="FILE",
        help="stream a run-event log (JSONL) here; tail it with "
             "`repro watch FILE` from another terminal",
    )

    churn_p = sub.add_parser(
        "churn",
        help="run one mobility-churn scenario (moving nodes, flapping links)",
    )
    churn_p.add_argument("--protocol", choices=PROTOCOL_NAMES, default="dbf")
    churn_p.add_argument("--seed", type=int, default=1)
    churn_p.add_argument(
        "--model", choices=MOBILITY_MODELS, default="waypoint",
        help="mobility model generating the link schedule",
    )
    churn_p.add_argument("--nodes", type=int, default=16, help="field size")
    churn_p.add_argument(
        "--range", type=float, default=400.0, dest="radio_range",
        help="radio range in meters (links = pairs within range)",
    )
    churn_p.add_argument(
        "--window", type=float, default=30.0,
        help="seconds of movement after the field starts churning",
    )
    churn_p.add_argument(
        "--settle", type=float, default=0.0, metavar="SECONDS",
        help="stop movement this long before the end so routing can quiesce "
             "(required for end-of-run oracle judgments)",
    )
    churn_p.add_argument(
        "--validate", action="store_true",
        help="attach the invariant monitor suite; violations exit non-zero",
    )
    churn_p.add_argument(
        "--dump-dir", metavar="DIR",
        help="write a post-mortem flight dump here if any monitor fires",
    )
    churn_p.add_argument(
        "--live-log", metavar="FILE",
        help="stream a run-event log (JSONL) here; tail it with "
             "`repro watch FILE` from another terminal",
    )

    shard_p = sub.add_parser(
        "shard",
        help="run one scenario sharded across worker simulators "
             "(byte-identical to a single-process run)",
    )
    shard_p.add_argument("--protocol", choices=PROTOCOL_NAMES, default="dbf")
    shard_p.add_argument("--degree", type=int, default=4)
    shard_p.add_argument("--seed", type=int, default=7)
    shard_p.add_argument("--shards", type=int, default=2)
    shard_p.add_argument(
        "--partition", choices=PARTITION_STRATEGIES, default="mincut",
        help="topology partitioning strategy",
    )
    shard_p.add_argument(
        "--process", action="store_true",
        help="one forked worker process per shard (default: in-process)",
    )
    shard_p.add_argument(
        "--check", action="store_true",
        help="also run single-process and verify byte-identity of metrics "
             "and trace streams; mismatches exit non-zero",
    )
    shard_p.add_argument(
        "--validate", action="store_true",
        help="re-check the offline invariants (packet conservation, FIB "
             "loops); violations exit non-zero",
    )
    shard_p.add_argument(
        "--window", type=float, default=30.0,
        help="seconds observed after the failure (default 30)",
    )
    shard_p.add_argument(
        "--live-log", metavar="FILE",
        help="stream a run-event log (JSONL) of barrier windows and "
             "per-shard heartbeats here; tail it with `repro watch FILE`",
    )
    shard_p.add_argument(
        "--perfetto", metavar="FILE",
        help="write a cross-shard Chrome trace-event JSON here (node lanes "
             "plus one lane per shard; requires --live-log)",
    )

    fig_p = sub.add_parser("figure", help="reproduce one paper figure")
    fig_p.add_argument("number", type=int, choices=(2, 3, 4, 5, 6, 7))
    fig_p.add_argument("--degrees", type=int, nargs="+", help="degrees to include")
    fig_p.add_argument("--runs", type=int, help="seeds per data point")
    fig_p.add_argument(
        "--matrix", action="store_true",
        help="full protocol matrix: the paper's wired protocols plus the "
             "MANET trio (aodv/dsr/olsr) side by side",
    )

    sweep_p = sub.add_parser("sweep", help="full protocol x degree sweep")
    sweep_p.add_argument("--protocols", nargs="+", choices=PROTOCOL_NAMES)
    sweep_p.add_argument("--degrees", type=int, nargs="+")
    sweep_p.add_argument("--runs", type=int)
    sweep_p.add_argument("--workers", type=int, default=1, help="process pool size")
    sweep_p.add_argument("--save", metavar="FILE", help="write results as JSON")
    sweep_p.add_argument(
        "--checkpoint", metavar="DIR",
        help="durable shard store: completed seeds are appended there and an "
             "interrupted sweep resumes from it (config must match)",
    )
    sweep_p.add_argument(
        "--resume", action="store_true",
        help="take the configuration from the checkpoint manifest instead of "
             "the command line (requires --checkpoint with an existing manifest)",
    )
    sweep_p.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock budget per seed; a hung seed is recorded as a "
             "failure and the sweep keeps going",
    )
    sweep_p.add_argument(
        "--retries", type=int, default=1,
        help="attempts to re-run a seed whose worker died (default 1)",
    )
    sweep_p.add_argument(
        "--progress", action="store_true", help="print per-seed progress lines"
    )
    sweep_p.add_argument(
        "--live-log", metavar="FILE",
        help="stream a run-event log (JSONL) of per-seed lifecycle records "
             "here; tail it with `repro watch FILE` from another terminal",
    )

    topo_p = sub.add_parser("topology", help="inspect a regular mesh")
    topo_p.add_argument("--degree", type=int, default=4)
    topo_p.add_argument("--rows", type=int, default=7)
    topo_p.add_argument("--cols", type=int, default=7)

    repro_p = sub.add_parser(
        "reproduce", help="regenerate every figure into an output directory"
    )
    repro_p.add_argument("--out", default="reproduction")
    repro_p.add_argument("--runs", type=int)
    repro_p.add_argument("--degrees", type=int, nargs="+")
    repro_p.add_argument(
        "--workers", type=int, default=1,
        help="process pool size for the campaign's full sweep",
    )
    repro_p.add_argument(
        "--checkpoint", metavar="DIR",
        help="durable shard store for the campaign's full sweep",
    )

    val_p = sub.add_parser(
        "validate",
        help="run the scenario fuzzer and differential oracle (CI smoke)",
    )
    val_p.add_argument(
        "--seeds", type=int, default=25,
        help="number of fuzz cases to generate (default 25)",
    )
    val_p.add_argument(
        "--master-seed", type=int, default=1,
        help="fuzz stream seed; every case derives from (master, index)",
    )
    val_p.add_argument(
        "--degrees", type=int, nargs="+", default=[3, 4, 5],
        help="degrees for the differential oracle (default 3 4 5)",
    )
    val_p.add_argument(
        "--oracle-seeds", type=int, default=2,
        help="scenario seeds per degree for the differential oracle",
    )
    val_p.add_argument(
        "--skip-oracle", action="store_true",
        help="fuzz only; skip the differential oracle pass",
    )
    val_p.add_argument(
        "--churn", action="store_true",
        help="also run the churn differential oracle (aodv/dsr/olsr under "
             "mobility with a quiet settle tail)",
    )
    val_p.add_argument(
        "--churn-seeds", type=int, default=2,
        help="seeds per mobility model for the churn oracle (default 2)",
    )

    prof_p = sub.add_parser(
        "profile",
        help="profile one scenario (and optionally a mini sweep): phase "
             "wall times, metric registry snapshot, sweep telemetry",
    )
    prof_p.add_argument("--protocol", choices=PROTOCOL_NAMES, default="dbf")
    prof_p.add_argument("--degree", type=int, default=4)
    prof_p.add_argument("--seed", type=int, default=1)
    prof_p.add_argument(
        "--out", metavar="FILE", help="write the JSON report here"
    )
    prof_p.add_argument(
        "--memory", action="store_true",
        help="also record tracemalloc peaks per phase (slower)",
    )
    prof_p.add_argument(
        "--sweep-seeds", type=int, default=0, metavar="N",
        help="also run an N-seed sweep of the same point and report its "
             "execution telemetry (per-seed runtime, worker utilisation)",
    )
    prof_p.add_argument(
        "--workers", type=int, default=1,
        help="process pool size for the telemetry sweep",
    )
    prof_p.add_argument(
        "--smoke", action="store_true",
        help="small fixed workload + schema self-check (CI smoke)",
    )

    narrate_p = sub.add_parser(
        "narrate", help="annotated timeline of one convergence event"
    )
    narrate_p.add_argument("--protocol", choices=PROTOCOL_NAMES, default="dbf")
    narrate_p.add_argument("--degree", type=int, default=4)
    narrate_p.add_argument("--seed", type=int, default=1)
    narrate_p.add_argument("--window", type=float, default=60.0,
                           help="seconds observed after the failure")

    trace_p = sub.add_parser(
        "trace",
        help="flight-recorder forensics: packet autopsies, causal "
             "convergence timeline, post-mortem dumps, Perfetto export",
    )
    trace_p.add_argument("--protocol", choices=PROTOCOL_NAMES, default="dbf")
    trace_p.add_argument("--degree", type=int, default=4)
    trace_p.add_argument("--seed", type=int, default=7)
    trace_p.add_argument(
        "--packet", type=int, metavar="ID",
        help="print the hop-by-hop autopsy of one packet",
    )
    trace_p.add_argument(
        "--timeline", action="store_true",
        help="print only the causal convergence timeline",
    )
    trace_p.add_argument(
        "--dump", metavar="FILE",
        help="read records from a post-mortem flight dump instead of "
             "running a scenario (the dump is schema-checked first)",
    )
    trace_p.add_argument(
        "--out", metavar="FILE",
        help="write the recorded rings as a flight dump here",
    )
    trace_p.add_argument(
        "--perfetto", metavar="FILE",
        help="write Chrome trace-event JSON here (open in ui.perfetto.dev)",
    )
    trace_p.add_argument(
        "--smoke", action="store_true",
        help="small fixed workload + dump schema self-check (CI smoke)",
    )

    watch_p = sub.add_parser(
        "watch",
        help="tail a run-event log written by --live-log and render live "
             "progress (works on a log another process is still writing)",
    )
    watch_p.add_argument("log", help="run-event log file (JSONL)")
    watch_p.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit instead of following the file",
    )
    watch_p.add_argument(
        "--check", action="store_true",
        help="schema-check the log first; problems exit non-zero",
    )
    watch_p.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval while following (default 0.5)",
    )

    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.paper() if args.paper_scale else ExperimentConfig.quick()
    overrides = {}
    if getattr(args, "degrees", None):
        overrides["degrees"] = tuple(args.degrees)
    if getattr(args, "runs", None):
        overrides["runs"] = args.runs
    if getattr(args, "protocols", None):
        overrides["protocols"] = tuple(args.protocols)
    if getattr(args, "rate", None):
        overrides["rate_pps"] = args.rate
    if getattr(args, "queue", None):
        overrides["event_queue"] = args.queue
    return config.with_(**overrides) if overrides else config


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config(args)
    r = run_scenario(
        args.protocol, args.degree, args.seed, config, live_log=args.live_log
    )
    print(f"protocol={r.protocol} degree={r.degree} seed={r.seed}")
    print(f"pre-failure path: {' -> '.join(map(str, r.pre_failure_path))}")
    print(f"failed link: {r.failed_link}")
    print(
        f"sent={r.sent} delivered={r.delivered} ({r.delivery_ratio:.1%}) "
        f"no_route={r.drops_no_route} ttl={r.drops_ttl} "
        f"link_down={r.drops_link_down} queue={r.drops_queue}"
    )
    print(
        f"forwarding convergence={r.forwarding_convergence:.3f}s "
        f"routing convergence={r.routing_convergence:.3f}s "
        f"converged_to_expected={r.converged_to_expected}"
    )
    if r.manet is not None:
        print(f"manet: {r.manet.summary()}")
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    from .experiments.churn import run_churn_scenario

    config = ExperimentConfig.quick().with_(
        post_fail_window=args.window,
        event_queue=args.queue,
        churn=ChurnConfig(
            model=args.model,
            n_nodes=args.nodes,
            radio_range=args.radio_range,
            settle_time=args.settle,
        ),
    )
    monitors = None
    if args.validate:
        from .validation.monitors import MonitorSuite

        monitors = MonitorSuite()
    r = run_churn_scenario(
        args.protocol,
        args.seed,
        config,
        monitors=monitors,
        dump_dir=args.dump_dir,
        live_log=args.live_log,
    )
    fails = sum(1 for e in r.events if e.kind == "fail")
    restores = len(r.events) - fails
    print(
        f"protocol={r.protocol} seed={r.seed} model={args.model} "
        f"nodes={args.nodes} range={args.radio_range:g}m"
    )
    print(f"initial path: {' -> '.join(map(str, r.initial_path))}")
    print(f"events: {len(r.events)} ({fails} fail, {restores} restore)")
    active = [e for e in r.events if e.wave_start is not None]
    print(
        f"reconvergence waves: {len(active)} of {len(r.events)} events "
        "caused routing activity"
    )
    print(
        f"sent={r.sent} delivered={r.delivered} ({r.delivery_ratio:.1%}) "
        f"no_route={r.drops_no_route} ttl={r.drops_ttl} "
        f"link_down={r.drops_link_down} queue={r.drops_queue}"
    )
    if r.manet is not None:
        print(f"manet: {r.manet.summary()}")
    if monitors is not None:
        if r.violations:
            print(f"INVARIANT VIOLATIONS ({len(r.violations)}):")
            for v in r.violations:
                print(f"  {v}")
            if r.dump_path:
                print(f"post-mortem dump: {r.dump_path}")
            return 1
        print("monitors: all green")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from .dist.merge import diff_results, run_single_with_traces
    from .dist.runner import run_scenario_sharded

    config = _config(args).with_(
        runs=1,
        post_fail_window=args.window,
        record_paths=True,
        shards=args.shards,
        partition=args.partition,
    )
    exchange = "process" if args.process else "local"
    if args.perfetto and not args.live_log:
        print(
            "error: --perfetto needs the shard-lane records from a run-event "
            "log; add --live-log FILE",
            file=sys.stderr,
        )
        return 2
    print(
        f"protocol={args.protocol} degree={args.degree} seed={args.seed} "
        f"shards={args.shards} partition={args.partition} exchange={exchange}"
    )

    if args.check:
        from .dist.merge import run_sharded_with_traces

        sharded, d_traces = run_sharded_with_traces(
            args.protocol,
            args.degree,
            args.seed,
            config,
            exchange=exchange,
            validate=args.validate,
            live_log=args.live_log,
        )
        single, s_traces = run_single_with_traces(
            args.protocol, args.degree, args.seed, config
        )
        problems = diff_results(single, s_traces, sharded, d_traces)
        streams = ", ".join(
            f"{len(d_traces[k])} {k}" for k in ("packet", "route", "link", "message")
        )
        print(f"trace streams: {streams}")
        if problems:
            print(f"BYTE-IDENTITY FAILED ({len(problems)} mismatch(es)):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print("byte-identity check: sharded == single-process")
        r = sharded
    else:
        r = run_scenario_sharded(
            args.protocol,
            args.degree,
            args.seed,
            config,
            exchange=exchange,
            collect_traces=bool(args.perfetto),
            validate=args.validate,
            live_log=args.live_log,
        )
    if args.live_log:
        print(f"run-event log written to {args.live_log}")
    if args.perfetto:
        from .dist.merge import shard_perfetto_trace
        from .obs.flight import write_perfetto
        from .obs.live import read_log

        trace = shard_perfetto_trace(r.traces, read_log(args.live_log))
        write_perfetto(trace, args.perfetto)
        print(
            f"cross-shard perfetto trace written to {args.perfetto} "
            f"({len(trace['traceEvents'])} events)"
        )
    print(
        f"sent={r.sent} delivered={r.delivered} ({r.delivery_ratio:.1%}) "
        f"no_route={r.drops_no_route} ttl={r.drops_ttl} "
        f"link_down={r.drops_link_down} queue={r.drops_queue}"
    )
    print(
        f"forwarding convergence={r.forwarding_convergence:.3f}s "
        f"routing convergence={r.routing_convergence:.3f}s "
        f"messages={r.messages}"
    )
    if args.validate:
        if r.violations:
            print(f"INVARIANT VIOLATIONS ({len(r.violations)}):")
            for v in r.violations:
                print(f"  {v}")
            return 1
        skipped = len(r.monitor_skips or {})
        print(f"offline invariants: all green ({skipped} monitor(s) skipped)")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = _config(args)
    if getattr(args, "matrix", False):
        from .experiments.config import MATRIX_PROTOCOLS

        config = config.with_(protocols=MATRIX_PROTOCOLS)
    n = args.number
    if n == 2:
        out = fig.figure2_topologies()
        for degree, info in sorted(out.items()):
            print(
                f"degree {degree}: {info['n_nodes']} nodes, {info['n_links']} links, "
                f"histogram {sorted(info['degree_histogram'].items())}"
            )
        return 0
    if n == 3:
        print(format_sweep_table(fig.figure3_drops_no_route(config)))
        return 0
    if n == 4:
        print(format_sweep_table(fig.figure4_ttl_expirations(config)))
        return 0
    if n == 5:
        degrees = tuple(args.degrees) if args.degrees else (3, 4, 6)
        series = fig.figure5_throughput(config, degrees)
        print(
            format_series_grid(
                series, "Figure 5: throughput (pkt/s), failure at t=0",
                t_min=-5, t_max=min(50, config.post_fail_window - 10), step=5,
            )
        )
        return 0
    if n == 6:
        fwd, rt = fig.figure6_convergence(config)
        print(format_sweep_table(fwd, precision=2))
        print()
        print(format_sweep_table(rt, precision=2))
        return 0
    if n == 7:
        degrees = tuple(args.degrees) if args.degrees else (4, 5, 6)
        series = fig.figure7_delay(config, degrees)
        print(
            format_series_grid(
                series, "Figure 7: packet delay (s), failure at t=0",
                t_min=-5, t_max=min(50, config.post_fail_window - 10), step=5,
                precision=4,
            )
        )
        return 0
    raise AssertionError(f"unhandled figure {n}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    store = None
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    if getattr(args, "checkpoint", None):
        from .experiments.store import SweepStore

        store = SweepStore(args.checkpoint)
        if args.resume:
            if not store.exists():
                print(
                    f"error: no sweep manifest in {args.checkpoint!r} to "
                    "resume from",
                    file=sys.stderr,
                )
                return 2
            config = store.load_config()
        else:
            config = _config(args)
    else:
        config = _config(args)

    progress = None
    if getattr(args, "progress", False):
        def progress(done: int, total: int, message: str) -> None:
            print(f"[{done}/{total}] {message}")

    try:
        results = run_sweep(
            config,
            workers=getattr(args, "workers", 1),
            store=store,
            timeout=getattr(args, "timeout", None),
            retries=getattr(args, "retries", 1),
            progress=progress,
            live_log=getattr(args, "live_log", None),
        )
    except KeyboardInterrupt:
        if store is not None:
            print(
                f"\ninterrupted; completed seeds are checkpointed in "
                f"{args.checkpoint!r} — rerun with --checkpoint "
                f"{args.checkpoint} (or --resume) to continue",
                file=sys.stderr,
            )
        else:
            print(
                "\ninterrupted; nothing checkpointed (use --checkpoint DIR "
                "for resumable sweeps)",
                file=sys.stderr,
            )
        return 130
    if getattr(args, "save", None):
        from .experiments.persistence import save_points

        save_points(results, args.save)
        print(f"results written to {args.save}")
    print(
        f"{'protocol':>9} {'degree':>7} {'drops(no_route)':>16} {'ttl':>6} "
        f"{'fwd_conv(s)':>12} {'rt_conv(s)':>11} {'delivery':>9}"
    )
    for (protocol, degree), point in sorted(results.items()):
        print(
            f"{protocol:>9} {degree:>7} {point.mean_drops_no_route:>16.1f} "
            f"{point.mean_drops_ttl:>6.1f} {point.mean_forwarding_convergence:>12.2f} "
            f"{point.mean_routing_convergence:>11.2f} {point.mean_delivery_ratio:>9.3f}"
        )
    n_failures = sum(len(p.failures) for p in results.values())
    if n_failures:
        print(f"\n{n_failures} seed(s) failed:")
        for _, point in sorted(results.items()):
            for failure in point.failures:
                print(f"  {failure}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from .topology.mesh import interior_nodes, regular_mesh
    from .topology.render import render_mesh
    from .topology.validate import degree_histogram

    topo = regular_mesh(args.rows, args.cols, args.degree)
    interior = interior_nodes(topo, args.rows, args.cols)
    print(f"{topo.name}: {topo.n_nodes} nodes, {topo.n_links} links")
    print(f"interior nodes: {len(interior)} (degree {args.degree})")
    print(f"degree histogram: {sorted(degree_histogram(topo).items())}")
    print(f"connected: {topo.is_connected()}")
    print()
    print(render_mesh(topo, args.rows, args.cols))
    return 0


def _cmd_narrate(args: argparse.Namespace) -> int:
    from .experiments.scenario import _pick_endpoints, _pick_failed_link
    from .metrics.convergence import ConvergenceTracker
    from .metrics.narrate import build_timeline, format_timeline
    from .net.dynamics import LinkScheduler
    from .net.network import Network
    from .experiments.scenario import make_protocol_factory
    from .sim.engine import Simulator
    from .sim.rng import RngStreams
    from .sim.tracing import TraceBus
    from .topology.generators import attach_host
    from .topology.mesh import regular_mesh
    from .topology.render import render_mesh

    config = _config(args)
    rng_streams = RngStreams(args.seed)
    scenario_rng = rng_streams.stream("scenario")
    topo = regular_mesh(config.rows, config.cols, args.degree)
    sr, rr = _pick_endpoints(scenario_rng, config.rows, config.cols)
    sender = attach_host(topo, sr)
    receiver = attach_host(topo, rr)
    pre = topo.shortest_path(sender, receiver)
    assert pre is not None
    failed = _pick_failed_link(scenario_rng, pre, sender, receiver)

    print(f"protocol={args.protocol} degree={args.degree} seed={args.seed}")
    print(f"flow: host {sender} -> host {receiver}; failing {failed} at t=10\n")
    print(render_mesh(topo, config.rows, config.cols, failed_link=failed))

    sim = Simulator(queue=config.event_queue)
    bus = TraceBus(keep_routes=True)
    net = Network(sim, topo, bus)
    net.attach_protocols(
        make_protocol_factory(args.protocol, net, rng_streams, topo, config)
    )
    for node in net.iter_nodes():
        assert node.protocol is not None
        node.protocol.warm_start(topo)
    tracker = ConvergenceTracker(bus, dest=receiver, src=sender)
    tracker.seed_from_network(net)
    LinkScheduler(sim, net, detection_delay=config.detection_delay).fail_link(
        *failed, at=10.0
    )
    sim.run(until=10.0 + args.window)
    events = build_timeline(
        route_changes=bus.route_changes,
        link_events=bus.link_events,
        snapshots=tracker.snapshots,
        dest=receiver,
        since=9.9,
    )
    print(f"\nTimeline (t=0 at failure; route events for destination {receiver}):\n")
    print(format_timeline(events, origin=10.0))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .validation.fuzz import fuzz, shrink
    from .validation.oracle import run_differential

    failed = False

    print(f"fuzz: {args.seeds} cases from master seed {args.master_seed}")
    report = fuzz(args.master_seed, args.seeds)
    for outcome in report.outcomes:
        if not outcome.failed:
            continue
        failed = True
        print(f"  FAIL {outcome.case.describe()}")
        if outcome.error:
            print(f"       crashed: {outcome.error}")
        for v in outcome.violations[:5]:
            print(f"       {v}")
        if len(outcome.violations) > 5:
            print(f"       ... and {len(outcome.violations) - 5} more")
        minimal = shrink(outcome.case)
        print(f"       minimal repro: {minimal.as_dict()}")
    print(f"  {report.summary()}")

    if not args.skip_oracle:
        from .validation.oracle import DEFAULT_PROTOCOLS

        print(
            f"differential oracle: protocols={','.join(DEFAULT_PROTOCOLS)} "
            f"degrees={args.degrees} x {args.oracle_seeds} seed(s)"
        )
        for degree in args.degrees:
            for seed in range(1, args.oracle_seeds + 1):
                diff = run_differential(degree, seed)
                print(f"  {diff.summary()}")
                if not diff.ok:
                    failed = True
                    for v in diff.all_violations()[:10]:
                        print(f"       {v}")

    if getattr(args, "churn", False):
        from .validation.monitors import settle_margin_for
        from .validation.oracle import run_churn_differential

        manet = ("aodv", "dsr", "olsr")
        settle = max(settle_margin_for(p) for p in manet) + 17.0
        models = ("waypoint", "manhattan")
        print(
            f"churn oracle: protocols={','.join(manet)} models={models} "
            f"x {args.churn_seeds} seed(s), settle tail {settle:g}s"
        )
        for model in models:
            for seed in range(1, args.churn_seeds + 1):
                cfg = ExperimentConfig.quick().with_(
                    post_fail_window=40.0 + settle,
                    churn=ChurnConfig(model=model, settle_time=settle),
                )
                diff = run_churn_differential(seed, cfg)
                print(f"  {model} {diff.summary()}")
                if not diff.ok:
                    failed = True
                    for v in diff.all_violations()[:10]:
                        print(f"       {v}")

    print("validation FAILED" if failed else "validation OK")
    return 1 if failed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .obs import RunObservation, SweepTelemetry
    from .obs.report import build_report, check_report, format_report

    config = _config(args)
    sweep_seeds = args.sweep_seeds
    if args.smoke:
        config = config.with_(runs=1, post_fail_window=30.0)
        sweep_seeds = sweep_seeds or 2

    obs = RunObservation(trace_memory=args.memory)
    result = run_scenario(args.protocol, args.degree, args.seed, config, obs=obs)

    sweep = None
    if sweep_seeds:
        telemetry = SweepTelemetry()
        run_sweep(
            config.with_(
                protocols=(args.protocol,),
                degrees=(args.degree,),
                runs=sweep_seeds,
            ),
            workers=args.workers,
            telemetry=telemetry,
        )
        sweep = telemetry.to_dict()

    report = build_report(
        scenario={
            "protocol": result.protocol,
            "degree": result.degree,
            "seed": result.seed,
            "sent": result.sent,
            "delivered": result.delivered,
            "total_drops": result.total_drops,
            "forwarding_convergence_s": result.forwarding_convergence,
            "routing_convergence_s": result.routing_convergence,
        },
        observation=obs.to_dict(),
        sweep=sweep,
        meta={
            "profile": "paper" if args.paper_scale else "quick",
            "smoke": bool(args.smoke),
            "memory": bool(args.memory),
        },
    )
    problems = check_report(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
        print(f"report written to {args.out}\n")
    print(format_report(report))
    if problems:
        print("\nreport failed its schema self-check:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.flight import (
        FlightRecorder,
        build_causal_timeline,
        build_dump,
        check_dump,
        dump_records,
        format_autopsy,
        format_causal_timeline,
        load_dump,
        packet_autopsies,
        packet_autopsy,
        perfetto_trace,
        save_dump,
        write_perfetto,
    )

    config = _config(args)
    if args.smoke:
        config = config.with_(post_fail_window=30.0)
        if not args.out:
            args.out = "trace-smoke-dump.json"

    recorder = None
    violations: list[str] = []
    if args.dump:
        dump = load_dump(args.dump)
        problems = check_dump(dump)
        if problems:
            print(f"{args.dump} failed its dump self-check:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        rings = dump_records(dump)
        packets = rings.get("packet", [])
        routes = rings.get("route", [])
        links = rings.get("link", [])
        messages = rings.get("message", [])
        meta = dump.get("meta", {})
        origin = float(meta.get("fail_time") or 0.0)
        violations = list(dump.get("violations") or ())
        print(
            f"flight dump {args.dump}: "
            + ", ".join(f"{len(rings.get(k, []))} {k}" for k in
                        ("packet", "route", "link", "message"))
        )
        if meta:
            print("  " + " ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    else:
        recorder = FlightRecorder()
        result = run_scenario(
            args.protocol, args.degree, args.seed, config, recorder=recorder
        )
        packets = recorder.records("packet")
        routes = recorder.records("route")
        links = recorder.records("link")
        messages = recorder.records("message")
        origin = config.fail_time if not config.cold_start else (
            config.cold_warmup + config.fail_time
        )
        print(
            f"protocol={result.protocol} degree={result.degree} "
            f"seed={result.seed}: sent={result.sent} "
            f"delivered={result.delivered} drops={result.total_drops}"
        )
        print(
            f"recorded: {len(packets)} packet, {len(routes)} route, "
            f"{len(links)} link, {len(messages)} message record(s)"
        )
    if violations:
        print("violations:")
        for v in violations:
            print(f"  {v}")

    if args.packet is not None:
        try:
            autopsy = packet_autopsy(packets, args.packet, routes)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        print()
        print(format_autopsy(autopsy, origin=origin))
    show_default = args.packet is None and not args.timeline
    if args.timeline or show_default:
        timeline = build_causal_timeline(
            routes, messages, links, since=origin or None
        )
        print(f"\nCausal convergence timeline (t=0 at failure):\n")
        print(format_causal_timeline(timeline, origin=origin))
    if show_default:
        # The forensically interesting packets: dropped or looped.
        cases = [
            a
            for a in packet_autopsies(packets, routes).values()
            if a.outcome == "dropped" or a.loop is not None
        ]
        if cases:
            print(f"\n{len(cases)} dropped/looped packet(s); autopsies:\n")
            for autopsy in cases[:3]:
                print(format_autopsy(autopsy, origin=origin))
                print()
            if len(cases) > 3:
                print(f"... {len(cases) - 3} more; use --packet ID")

    rc = 0
    if args.out:
        if recorder is None:
            print("note: --out ignored when reading from --dump")
        else:
            dump = build_dump(
                recorder,
                meta={
                    "protocol": args.protocol,
                    "degree": args.degree,
                    "seed": args.seed,
                    "fail_time": origin,
                },
            )
            save_dump(dump, args.out)
            problems = check_dump(load_dump(args.out))
            if problems:
                print(
                    f"{args.out} failed its dump self-check:", file=sys.stderr
                )
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                rc = 1
            else:
                print(f"\nflight dump written to {args.out} (self-check ok)")
    if args.perfetto:
        write_perfetto(
            perfetto_trace(packets, routes, links, messages), args.perfetto
        )
        print(f"perfetto trace written to {args.perfetto}")
    return rc


def _cmd_watch(args: argparse.Namespace) -> int:
    from .obs.live import check_log, read_log, watch

    if args.check:
        records = read_log(args.log)
        problems = check_log(records)
        if problems:
            print(f"LOG SCHEMA PROBLEMS ({len(problems)}):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"log schema: ok ({len(records)} records)")
    return watch(args.log, once=args.once, interval=args.interval)


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.campaign import reproduce

    config = _config(args)
    report = reproduce(
        config,
        out_dir=args.out,
        progress=True,
        workers=getattr(args, "workers", 1),
        checkpoint_dir=getattr(args, "checkpoint", None),
    )
    print(f"\nreport: {report.path('REPORT.md')}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "churn": _cmd_churn,
        "shard": _cmd_shard,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "topology": _cmd_topology,
        "narrate": _cmd_narrate,
        "trace": _cmd_trace,
        "validate": _cmd_validate,
        "reproduce": _cmd_reproduce,
        "profile": _cmd_profile,
        "watch": _cmd_watch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
