"""repro — packet delivery performance during routing convergence.

A full reproduction of Pei, Wang, Massey, Wu & Zhang, "A Study of Packet
Delivery Performance during Routing Convergence" (DSN 2003): a packet-level
discrete-event network simulator, the three routing protocols the paper
studies (RIP, DBF, BGP — plus the fast-MRAI BGP-3 variant and a link-state
SPF extension), the Baran-style regular mesh topology family, and the
measurement/experiment harness that regenerates every figure in the paper's
evaluation.

Quickstart::

    from repro import run_scenario, ExperimentConfig

    result = run_scenario("dbf", degree=4, seed=1, config=ExperimentConfig.quick())
    print(result.drops_no_route, result.forwarding_convergence)
"""

from .experiments import (
    ExperimentConfig,
    PointResult,
    ScenarioResult,
    run_point,
    run_scenario,
    run_sweep,
)
from .net import LinkEvent, LinkScheduler, Network, Packet
from .routing import (
    BgpConfig,
    BgpProtocol,
    DampingConfig,
    DbfProtocol,
    DistanceVectorConfig,
    DualProtocol,
    RipProtocol,
    SpfConfig,
    SpfProtocol,
    StaticProtocol,
)
from .sim import RngStreams, Simulator, TraceBus
from .topology import Topology, regular_mesh
from .traffic import CbrSource, FlowSpec, PacketSink

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "RngStreams",
    "TraceBus",
    "Topology",
    "regular_mesh",
    "Network",
    "Packet",
    "LinkScheduler",
    "LinkEvent",
    "RipProtocol",
    "DbfProtocol",
    "DualProtocol",
    "BgpProtocol",
    "BgpConfig",
    "DampingConfig",
    "SpfProtocol",
    "SpfConfig",
    "StaticProtocol",
    "DistanceVectorConfig",
    "CbrSource",
    "FlowSpec",
    "PacketSink",
    "ExperimentConfig",
    "ScenarioResult",
    "PointResult",
    "run_scenario",
    "run_point",
    "run_sweep",
]
