"""Deterministic random-number streams.

Every stochastic component (per-node timer jitter, traffic jitter, failure
picking) draws from its own named stream so that adding a new consumer never
perturbs the draws seen by existing ones.  Streams are derived from a single
run seed plus a component label, which makes multi-seed experiment sweeps
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of independent, deterministic ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return the stream for ``label``, creating it on first use.

        The same (seed, label) pair always yields the same sequence.
        """
        existing = self._streams.get(label)
        if existing is not None:
            return existing
        derived = self._derive(label)
        rng = random.Random(derived)
        self._streams[label] = rng
        return rng

    def _derive(self, label: str) -> int:
        # CRC32 of the label mixed with the seed: stable across processes and
        # Python versions (unlike hash()).
        return (self.seed << 32) ^ zlib.crc32(label.encode("utf-8"))

    def spawn(self, sub_seed: int) -> "RngStreams":
        """Derive a child stream family (e.g. one per simulation run)."""
        return RngStreams((self.seed * 1_000_003 + sub_seed) & 0x7FFF_FFFF_FFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
