"""Structured trace records and the trace bus.

The paper's methodology is trace-driven: it studies "the forwarding and
routing trace files" to attribute every drop and loop to a cause.  We mirror
that with typed records published on a :class:`TraceBus`.  Metric collectors
subscribe to the kinds they care about; retention of full in-memory traces is
opt-in so large sweeps stay cheap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "DropCause",
    "PacketRecord",
    "RouteChangeRecord",
    "LinkEventRecord",
    "MessageRecord",
    "TraceBus",
]


class DropCause(enum.Enum):
    """Why a data packet died.  Mirrors the paper's drop attribution."""

    NO_ROUTE = "no_route"  # router had no next hop (path switch-over period)
    TTL_EXPIRED = "ttl_expired"  # routing loop consumed the TTL
    QUEUE_OVERFLOW = "queue_overflow"  # drop-tail queue was full
    LINK_DOWN = "link_down"  # in flight on (or sent into) a failed link


@dataclass(frozen=True)
class PacketRecord:
    """One packet lifecycle event.

    ``kind`` is one of ``"send"`` (entered the network at the source),
    ``"forward"`` (relayed by a router), ``"deliver"`` (reached the sink) or
    ``"drop"``.
    """

    time: float
    kind: str
    packet_id: int
    node: int
    flow_id: int
    ttl: int
    cause: Optional[DropCause] = None


@dataclass(frozen=True)
class RouteChangeRecord:
    """A node's FIB next hop for ``dest`` changed (None = unreachable)."""

    time: float
    node: int
    dest: int
    old_next_hop: Optional[int]
    new_next_hop: Optional[int]


@dataclass(frozen=True)
class LinkEventRecord:
    """A link changed operational state (``up`` True/False)."""

    time: float
    node_a: int
    node_b: int
    up: bool


@dataclass(frozen=True)
class MessageRecord:
    """A routing-protocol message was sent (for overhead accounting)."""

    time: float
    sender: int
    receiver: int
    protocol: str
    n_routes: int
    is_withdrawal: bool = False


_Record = object


class TraceBus:
    """Publish/subscribe hub for trace records.

    ``keep_packets`` / ``keep_routes`` / ``keep_messages`` control whether the
    bus also retains full record lists for after-the-fact analysis (hop path
    reconstruction, loop detection).  Subscribers always see every record.
    """

    def __init__(
        self,
        keep_packets: bool = False,
        keep_routes: bool = True,
        keep_messages: bool = False,
    ) -> None:
        self._subscribers: dict[type, list[Callable[[object], None]]] = {}
        self.keep_packets = keep_packets
        self.keep_routes = keep_routes
        self.keep_messages = keep_messages
        self.packets: list[PacketRecord] = []
        self.route_changes: list[RouteChangeRecord] = []
        self.link_events: list[LinkEventRecord] = []
        self.messages: list[MessageRecord] = []

    def subscribe(self, record_type: type, handler: Callable[[object], None]) -> None:
        """Call ``handler(record)`` for every published record of ``record_type``."""
        self._subscribers.setdefault(record_type, []).append(handler)

    def publish(self, record: object) -> None:
        """Dispatch a record to retention lists and subscribers."""
        if isinstance(record, PacketRecord):
            if self.keep_packets:
                self.packets.append(record)
        elif isinstance(record, RouteChangeRecord):
            if self.keep_routes:
                self.route_changes.append(record)
        elif isinstance(record, LinkEventRecord):
            self.link_events.append(record)
        elif isinstance(record, MessageRecord):
            if self.keep_messages:
                self.messages.append(record)
        for handler in self._subscribers.get(type(record), ()):
            handler(record)

    def clear(self) -> None:
        """Drop retained records (subscriptions are kept)."""
        self.packets.clear()
        self.route_changes.clear()
        self.link_events.clear()
        self.messages.clear()
