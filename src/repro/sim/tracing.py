"""Structured trace records and the trace bus.

The paper's methodology is trace-driven: it studies "the forwarding and
routing trace files" to attribute every drop and loop to a cause.  We mirror
that with typed records published on a :class:`TraceBus`.  Metric collectors
subscribe to the kinds they care about; retention of full in-memory traces is
opt-in so large sweeps stay cheap.

Hot-path contract: producers (``Node``/``Link``/protocols) must bump the
always-on integer :class:`TraceCounters` and consult the per-kind
``wants_*`` guard *before* constructing a record::

    bus.counters.delivers += 1
    if bus.wants_packet:
        bus.publish(PacketRecord(...))

When nothing subscribed to a kind and retention for it is off, no record
object is ever allocated — the whole trace layer costs one integer increment
per event.  Collectors therefore MUST register through :meth:`TraceBus.subscribe`
(which flips the guard) rather than wrapping ``publish``.
"""

from __future__ import annotations

import enum
from typing import Callable, NamedTuple, Optional, Union

__all__ = [
    "DropCause",
    "PacketRecord",
    "RouteChangeRecord",
    "LinkEventRecord",
    "MessageRecord",
    "TraceCounters",
    "TraceBus",
]


class DropCause(enum.Enum):
    """Why a data packet died.  Mirrors the paper's drop attribution."""

    NO_ROUTE = "no_route"  # router had no next hop (path switch-over period)
    TTL_EXPIRED = "ttl_expired"  # routing loop consumed the TTL
    QUEUE_OVERFLOW = "queue_overflow"  # drop-tail queue was full
    LINK_DOWN = "link_down"  # in flight on (or sent into) a failed link


# Records are NamedTuples, not frozen dataclasses: construction is the trace
# layer's real hot-path cost (one record per packet event when a recorder is
# attached), and tuple.__new__ is ~4x cheaper than a frozen dataclass
# __init__'s per-field object.__setattr__ calls.  Hot producers (Node,
# set_next_hop) construct them positionally for the same reason.


class PacketRecord(NamedTuple):
    """One packet lifecycle event.

    ``kind`` is one of ``"send"`` (entered the network at the source),
    ``"forward"`` (relayed by a router), ``"deliver"`` (reached the sink) or
    ``"drop"``.  ``dst`` is the packet's destination node, letting an
    after-the-fact autopsy reconstruct the FIB entry each hop consulted
    (None for records written before the field existed).
    """

    time: float
    kind: str
    packet_id: int
    node: int
    flow_id: int
    ttl: int
    cause: Optional[DropCause] = None
    dst: Optional[int] = None


class RouteChangeRecord(NamedTuple):
    """A node's FIB next hop for ``dest`` changed (None = unreachable).

    ``cause`` attributes the change to the control-plane event that applied
    it: ``("message", sender)`` for an update from a neighbor,
    ``("link_down"/"link_up", neighbor)`` for failure-detection callbacks,
    ``("timeout", dest)`` for route aging, ``("damping_reuse", dest)`` for a
    damped route coming back, ``("spf_recompute", None)`` and friends for
    deferred recomputation.  None when the change happened outside any
    attributed scope (warm start, hand-set FIBs).
    """

    time: float
    node: int
    dest: int
    old_next_hop: Optional[int]
    new_next_hop: Optional[int]
    cause: Optional[tuple[str, Optional[int]]] = None


class LinkEventRecord(NamedTuple):
    """A link changed operational state (``up`` True/False)."""

    time: float
    node_a: int
    node_b: int
    up: bool


class MessageRecord(NamedTuple):
    """A routing-protocol message was sent (for overhead accounting).

    ``size_bytes`` is the on-the-wire size (0 when the sender did not
    report it).
    """

    time: float
    sender: int
    receiver: int
    protocol: str
    n_routes: int
    is_withdrawal: bool = False
    size_bytes: int = 0


#: The four trace kinds, in hot-path order.
TRACE_KINDS = ("packet", "route", "link", "message")

_KIND_OF_TYPE: dict[type, str] = {
    PacketRecord: "packet",
    RouteChangeRecord: "route",
    LinkEventRecord: "link",
    MessageRecord: "message",
}


class TraceCounters:
    """Always-on integer event counters, bumped even when tracing is off.

    These are the cheap aggregate view of the packet/routing activity a bus
    would have seen: producers increment them unconditionally (one integer
    add), independent of whether any record object was constructed.
    """

    __slots__ = (
        "sends",
        "forwards",
        "delivers",
        "drops",
        "route_changes",
        "link_events",
        "messages",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.sends = 0
        self.forwards = 0
        self.delivers = 0
        self.drops = 0
        self.route_changes = 0
        self.link_events = 0
        self.messages = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"TraceCounters({body})"


class TraceBus:
    """Publish/subscribe hub for trace records, organized per kind.

    ``keep_packets`` / ``keep_routes`` / ``keep_links`` / ``keep_messages``
    control whether the bus also retains full record lists for
    after-the-fact analysis (hop path reconstruction, loop detection).
    Subscribers always see every record of their kind.  ``keep_links``
    defaults True — link transitions are rare and the narration tools read
    them off the bus — but sweeps that want a fully quiet bus can turn it
    off like any other kind.

    The ``wants_packet`` / ``wants_route`` / ``wants_link`` / ``wants_message``
    attributes are the hot-path guards: True iff some subscriber or retention
    list would observe a record of that kind.  They are plain booleans (one
    attribute load to check) recomputed on every subscribe/retention change.
    """

    __slots__ = (
        "_keep_packets",
        "_keep_routes",
        "_keep_links",
        "_keep_messages",
        "packets",
        "route_changes",
        "link_events",
        "messages",
        "_subs",
        "_packet_subs",
        "_route_subs",
        "_link_subs",
        "_message_subs",
        "wants_packet",
        "wants_route",
        "wants_link",
        "wants_message",
        "counters",
    )

    def __init__(
        self,
        keep_packets: bool = False,
        keep_routes: bool = True,
        keep_messages: bool = False,
        keep_links: bool = True,
    ) -> None:
        self._keep_packets = keep_packets
        self._keep_routes = keep_routes
        self._keep_links = keep_links
        self._keep_messages = keep_messages
        self.packets: list[PacketRecord] = []
        self.route_changes: list[RouteChangeRecord] = []
        self.link_events: list[LinkEventRecord] = []
        self.messages: list[MessageRecord] = []
        self._subs: dict[str, list[Callable[[object], None]]] = {
            kind: [] for kind in TRACE_KINDS
        }
        # Aliases of the _subs lists, cached as slots so ``publish`` skips a
        # dict lookup per record.  subscribe/unsubscribe mutate the lists in
        # place, so the aliases never go stale.
        self._packet_subs = self._subs["packet"]
        self._route_subs = self._subs["route"]
        self._link_subs = self._subs["link"]
        self._message_subs = self._subs["message"]
        self.counters = TraceCounters()
        self._refresh_guards()

    # ------------------------------------------------------- retention flags

    @property
    def keep_packets(self) -> bool:
        return self._keep_packets

    @keep_packets.setter
    def keep_packets(self, value: bool) -> None:
        self._keep_packets = value
        self._refresh_guards()

    @property
    def keep_routes(self) -> bool:
        return self._keep_routes

    @keep_routes.setter
    def keep_routes(self, value: bool) -> None:
        self._keep_routes = value
        self._refresh_guards()

    @property
    def keep_links(self) -> bool:
        return self._keep_links

    @keep_links.setter
    def keep_links(self, value: bool) -> None:
        self._keep_links = value
        self._refresh_guards()

    @property
    def keep_messages(self) -> bool:
        return self._keep_messages

    @keep_messages.setter
    def keep_messages(self, value: bool) -> None:
        self._keep_messages = value
        self._refresh_guards()

    def _refresh_guards(self) -> None:
        subs = self._subs
        self.wants_packet = bool(subs["packet"]) or self._keep_packets
        self.wants_route = bool(subs["route"]) or self._keep_routes
        self.wants_link = bool(subs["link"]) or self._keep_links
        self.wants_message = bool(subs["message"]) or self._keep_messages

    # ----------------------------------------------------------- subscribing

    def wants(self, kind: str) -> bool:
        """Would a record of ``kind`` reach any observer right now?

        ``kind`` is one of ``"packet"``, ``"route"``, ``"link"``,
        ``"message"``.  Producers may cache the equivalent ``wants_<kind>``
        attribute lookup in hot loops; the value only changes on
        subscribe/retention mutation.
        """
        if kind not in self._subs:
            raise ValueError(f"unknown trace kind {kind!r}")
        return getattr(self, f"wants_{kind}")

    def subscribe(
        self, kind: Union[str, type], handler: Callable[[object], None]
    ) -> None:
        """Call ``handler(record)`` for every published record of ``kind``.

        ``kind`` is a kind string (``"packet"``, ``"route"``, ``"link"``,
        ``"message"``) or, for backward compatibility, the record type itself.
        """
        if isinstance(kind, type):
            try:
                kind = _KIND_OF_TYPE[kind]
            except KeyError:
                raise ValueError(
                    f"unknown trace record type {kind.__name__}"
                ) from None
        elif kind not in self._subs:
            raise ValueError(f"unknown trace kind {kind!r}")
        self._subs[kind].append(handler)
        self._refresh_guards()

    def unsubscribe(
        self, kind: Union[str, type], handler: Callable[[object], None]
    ) -> None:
        """Remove a previously registered ``handler`` for ``kind``.

        Recomputes the ``wants_*`` guards, so detaching the last subscriber
        of a kind (with retention off) returns its hot path to the
        zero-allocation regime.  Long-lived processes that attach collectors
        per run (see :meth:`repro.metrics.counters.DropCounter.close`) must
        use this rather than leaking dead subscribers.  Raises ``ValueError``
        if the handler is not currently subscribed.
        """
        if isinstance(kind, type):
            try:
                kind = _KIND_OF_TYPE[kind]
            except KeyError:
                raise ValueError(
                    f"unknown trace record type {kind.__name__}"
                ) from None
        elif kind not in self._subs:
            raise ValueError(f"unknown trace kind {kind!r}")
        try:
            self._subs[kind].remove(handler)
        except ValueError:
            raise ValueError(
                f"handler {handler!r} is not subscribed to {kind!r}"
            ) from None
        self._refresh_guards()

    # ------------------------------------------------------------ publishing

    def publish(self, record: object) -> None:
        """Dispatch a record to its kind's retention list and subscribers."""
        cls = type(record)
        if cls is PacketRecord:
            if self._keep_packets:
                self.packets.append(record)
            subscribers = self._packet_subs
        elif cls is RouteChangeRecord:
            if self._keep_routes:
                self.route_changes.append(record)
            subscribers = self._route_subs
        elif cls is LinkEventRecord:
            if self._keep_links:
                self.link_events.append(record)
            subscribers = self._link_subs
        elif cls is MessageRecord:
            if self._keep_messages:
                self.messages.append(record)
            subscribers = self._message_subs
        else:
            return
        for handler in subscribers:
            handler(record)

    def clear(self) -> None:
        """Drop retained records (subscriptions and counters are kept)."""
        self.packets.clear()
        self.route_changes.clear()
        self.link_events.clear()
        self.messages.clear()
