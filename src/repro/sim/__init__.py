"""Discrete-event simulation substrate (engine, timers, RNG, tracing)."""

from .engine import EventHandle, SimulationError, Simulator
from .rng import RngStreams
from .timers import JitteredInterval, OneShotTimer, PeriodicTimer
from .tracing import (
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
)
from . import units

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "RngStreams",
    "JitteredInterval",
    "OneShotTimer",
    "PeriodicTimer",
    "DropCause",
    "PacketRecord",
    "RouteChangeRecord",
    "LinkEventRecord",
    "MessageRecord",
    "TraceBus",
    "units",
]
