"""Discrete-event simulation substrate (engine, timers, RNG, tracing)."""

from .engine import EventHandle, EventStats, SimulationError, Simulator
from .eventq import (
    EVENT_QUEUE_NAMES,
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
    resolve_queue_name,
)
from .rng import RngStreams
from .timers import JitteredInterval, OneShotTimer, PeriodicTimer
from .tracing import (
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
    TraceCounters,
)
from . import units

__all__ = [
    "Simulator",
    "EventHandle",
    "EventStats",
    "SimulationError",
    "EVENT_QUEUE_NAMES",
    "HeapEventQueue",
    "CalendarEventQueue",
    "make_event_queue",
    "resolve_queue_name",
    "RngStreams",
    "JitteredInterval",
    "OneShotTimer",
    "PeriodicTimer",
    "DropCause",
    "PacketRecord",
    "RouteChangeRecord",
    "LinkEventRecord",
    "MessageRecord",
    "TraceBus",
    "TraceCounters",
    "units",
]
