"""Discrete-event simulation substrate (engine, timers, RNG, tracing)."""

from .engine import EventHandle, EventStats, SimulationError, Simulator
from .rng import RngStreams
from .timers import JitteredInterval, OneShotTimer, PeriodicTimer
from .tracing import (
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
    TraceCounters,
)
from . import units

__all__ = [
    "Simulator",
    "EventHandle",
    "EventStats",
    "SimulationError",
    "RngStreams",
    "JitteredInterval",
    "OneShotTimer",
    "PeriodicTimer",
    "DropCause",
    "PacketRecord",
    "RouteChangeRecord",
    "LinkEventRecord",
    "MessageRecord",
    "TraceBus",
    "TraceCounters",
    "units",
]
