"""Pluggable event-queue backends for the simulation engine.

The :class:`~repro.sim.engine.Simulator` orders events by ``(time, seq)``
tuples — absolute fire time, ties broken by a monotone insertion counter so
same-time events execute FIFO.  Two backends implement that contract:

* :class:`HeapEventQueue` — the binary heap the engine has always used.
  ``O(log n)`` push/pop through the C-implemented :mod:`heapq`; the safe
  default for every workload shape.
* :class:`CalendarEventQueue` — a calendar queue (R. Brown, CACM 1988): a
  wheel of time buckets of width ``w``, bucket ``int(t / w) % nbuckets``.
  Enqueue is amortized ``O(1)``; dequeue scans forward from the current
  bucket.  When the pending population is a large, roughly uniform spread
  of timers — the RIP 30 s periodic and OLSR HELLO/TC populations that
  dominate the paper's distance-vector workloads — it removes the
  ``log n`` sift cost entirely.  The wheel resizes itself (bucket count
  *and* width) as the population grows, shrinks, or changes spacing.

Both backends hold the same plain ``(time, seq, handle)`` tuples and pop
them in exactly the same total order, so a run is bit-identical under
either — pinned by the golden-metrics suite and a hypothesis differential
test.  Lazy cancellation lives above the backend: the engine pops flagged
husks no matter which structure surfaced them.

One contract requirement beyond ordering: a pushed entry must compare
``>=`` every entry already popped (the engine guarantees this — events are
scheduled at ``time >= now`` and the seq counter is monotone).  The
calendar backend leans on it to insert into the partially-consumed current
bucket in O(log b).

Backend selection: ``Simulator(queue="heap"|"calendar")``, defaulting to
the ``REPRO_EVENT_QUEUE`` environment variable and then ``"heap"``.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Optional

__all__ = [
    "EVENT_QUEUE_NAMES",
    "DEFAULT_EVENT_QUEUE",
    "EVENT_QUEUE_ENV",
    "HeapEventQueue",
    "CalendarEventQueue",
    "make_event_queue",
    "resolve_queue_name",
]

#: Backend names accepted by :func:`make_event_queue` and ``Simulator(queue=)``.
EVENT_QUEUE_NAMES = ("heap", "calendar")

DEFAULT_EVENT_QUEUE = "heap"

#: Environment variable consulted when no backend is named explicitly.
EVENT_QUEUE_ENV = "REPRO_EVENT_QUEUE"


def resolve_queue_name(name: Optional[str]) -> str:
    """Resolve an explicit/None backend name to a validated backend name.

    ``None`` falls back to ``$REPRO_EVENT_QUEUE``, then ``"heap"``; an
    unknown name (explicit or from the environment) raises ``ValueError``.
    """
    if name is None:
        name = os.environ.get(EVENT_QUEUE_ENV) or DEFAULT_EVENT_QUEUE
    if name not in EVENT_QUEUE_NAMES:
        raise ValueError(
            f"unknown event queue backend {name!r} "
            f"(expected one of {EVENT_QUEUE_NAMES})"
        )
    return name


def make_event_queue(name: Optional[str] = None):
    """Instantiate a backend by name (see :func:`resolve_queue_name`)."""
    resolved = resolve_queue_name(name)
    if resolved == "heap":
        return HeapEventQueue()
    return CalendarEventQueue()


class HeapEventQueue:
    """Binary-heap backend: plain list managed by :mod:`heapq`."""

    __slots__ = ("_q", "hwm")

    name = "heap"

    def __init__(self) -> None:
        self._q: list = []
        self.hwm = 0

    def __len__(self) -> int:
        return len(self._q)

    def push(self, entry) -> None:
        q = self._q
        heappush(q, entry)
        if len(q) > self.hwm:
            self.hwm = len(q)

    def peek(self):
        """Smallest entry without removing it, or None when empty."""
        q = self._q
        return q[0] if q else None

    def pop(self):
        """Remove and return the smallest entry (queue must be non-empty)."""
        return heappop(self._q)


class CalendarEventQueue:
    """Calendar-queue backend: a self-resizing wheel of time buckets.

    Buckets are *unsorted* lists — push is a plain ``list.append``.  The
    ordering cost is paid once per bucket-year on the dequeue side: when the
    scan reaches a bucket, the entries belonging to the current "year" are
    split out, sorted once (C timsort over a handful of items), and then
    consumed by index — so steady-state pop is an index increment, not a
    heap sift.  With the wheel tuned to ~3 events per bucket, both
    operations are amortized O(1) regardless of population size.

    Bucket mapping uses the *absolute* bucket number ``k = int(t / width)``
    (bucket ``k % nbuckets``, "year" ``k // nbuckets``).  The dequeue scan
    tracks the same absolute ``k``, so the membership test during a scan is
    the exact integer expression used at insert time — no float boundary
    can put an event on different sides of push and pop.

    Resize policy (amortized O(1) per operation):

    * grow to ``2 * nbuckets`` when the population exceeds ``2 * nbuckets``;
    * shrink to ``nbuckets / 2`` when it falls below ``nbuckets / 8``;
    * on every resize the bucket width is re-estimated as three times the
      median gap between time-adjacent pending events (Brown's rule, with
      a median so one far-future outlier cannot blow up the width), so the
      wheel re-tunes to whatever spacing the workload currently has.
      Deterministic: a pure function of the pending set.
    """

    __slots__ = (
        "_buckets",
        "_byear",
        "_nbuckets",
        "_mask",
        "_width",
        "_k",
        "_cur",
        "_ci",
        "_cur_year",
        "_n",
        "hwm",
    )

    name = "calendar"

    #: Wheel size bounds.  The lower bound keeps the sparse-queue scan
    #: cheap; the upper bound caps memory for degenerate populations.
    MIN_BUCKETS = 32
    MAX_BUCKETS = 1 << 20

    #: Sentinel for ``_byear``: bucket holds entries of several years (or
    #: its single-year tag is unknown) — fall back to per-entry testing.
    MIXED = -1

    def __init__(
        self, bucket_count: int = MIN_BUCKETS, bucket_width: float = 1.0
    ) -> None:
        if bucket_count < 1:
            raise ValueError(f"bucket_count must be >= 1, got {bucket_count}")
        if not bucket_width > 0.0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width!r}")
        # The wheel size is kept a power of two so bucket indexing is a
        # bitmask, not a modulo.
        nbuckets = 1
        while nbuckets < bucket_count:
            nbuckets <<= 1
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._width = bucket_width
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        # _byear[i]: the absolute bucket number every entry in bucket i
        # belongs to, or MIXED when entries from several wheel revolutions
        # share it.  Maintained on push so the common-case year-load can
        # take the whole bucket without testing entries one by one.
        self._byear: list[int] = [self.MIXED] * nbuckets
        # Absolute bucket number of the dequeue cursor: every pending event
        # outside ``_cur`` lives at bucket number >= _k (the scan has
        # certified emptiness below it).
        self._k = 0
        # The current bucket-year's entries, ascending-sorted, consumed by
        # advancing ``_ci`` (so pop is an index bump, not a list mutation).
        self._cur: list = []
        self._ci = 0
        self._cur_year: Optional[int] = None
        self._n = 0
        self.hwm = 0

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------- interface

    def push(self, entry) -> None:
        k = int(entry[0] / self._width)
        if k == self._cur_year:
            # Into the bucket-year being consumed.  Every consumed entry
            # compares < entry (the push-after-pop contract), so insort
            # lands it at an index >= _ci.
            insort(self._cur, entry)
        else:
            i = k & self._mask
            bucket = self._buckets[i]
            if bucket:
                if self._byear[i] != k:
                    self._byear[i] = self.MIXED
            else:
                self._byear[i] = k
            bucket.append(entry)
            if k < self._k:
                # Behind the certified-empty floor (the cursor had skipped
                # past this bucket's year): rewind so the scan sees it.
                self._flush_cur()
                self._k = k
        n = self._n = self._n + 1
        if n > self.hwm:
            self.hwm = n
        if n > (self._nbuckets << 1) and self._nbuckets < self.MAX_BUCKETS:
            self._resize(self._nbuckets << 1)

    def peek(self):
        """Smallest entry without removing it, or None when empty.

        Loads the winning bucket-year into the sorted run, so the pops that
        follow are index increments.
        """
        if self._ci < len(self._cur):
            return self._cur[self._ci]
        if not self._n:
            return None
        # Shrink check lives here, not in pop(): a population can only fall
        # via pops, and deferring the check until the run is exhausted keeps
        # pop itself branch-free (an index bump) while bounding the delay to
        # one bucket-year.
        if self._n < (self._nbuckets >> 3) and self._nbuckets > self.MIN_BUCKETS:
            self._resize(self._nbuckets >> 1)
        buckets = self._buckets
        byear = self._byear
        nb = self._nbuckets
        mask = self._mask
        width = self._width
        k = self._k
        for _ in range(nb):
            i = k & mask
            bucket = buckets[i]
            if bucket:
                if byear[i] == k:
                    # Single-year bucket (the common case when the wheel
                    # span covers the horizon): take it whole, no per-entry
                    # membership tests.
                    cur = bucket[:]
                    bucket.clear()
                    cur.sort()
                    self._cur = cur
                    self._ci = 0
                    self._cur_year = k
                    self._k = k
                    return cur[0]
                hit = self._load_year(bucket, i, k)
                if hit is not None:
                    return hit
            # Bucket number k holds nothing of year k (number k maps only to
            # this bucket), so the floor can advance for future scans.
            k += 1
            self._k = k
        # One full revolution found nothing in its own year: the queue is
        # sparse relative to the wheel span.  Direct-search the smallest
        # year over all entries, jump the cursor to it and load it.
        best_k = None
        best_i = None
        for i, bucket in enumerate(buckets):
            for entry in bucket:
                ky = int(entry[0] / width)
                if best_k is None or ky < best_k:
                    best_k = ky
                    best_i = i
        assert best_k is not None  # _n > 0 guarantees an entry exists
        self._k = best_k
        return self._load_year(buckets[best_i], best_i, best_k)

    def pop(self):
        """Remove and return the smallest entry (queue must be non-empty)."""
        ci = self._ci
        if ci < len(self._cur):
            entry = self._cur[ci]
            self._ci = ci + 1
        else:
            entry = self.peek()
            if entry is None:
                raise IndexError("pop from an empty CalendarEventQueue")
            self._ci += 1
        self._n -= 1
        return entry

    # --------------------------------------------------------------- plumbing

    def _load_year(self, bucket: list, i: int, k: int) -> Optional[object]:
        """Split year-``k`` entries out of mixed bucket ``i`` into the run.

        Returns the smallest such entry, or None if the bucket only holds
        other revolutions' entries.  Uses the same ``int(t / width)``
        expression as :meth:`push`, so membership is exact.
        """
        width = self._width
        cur = [entry for entry in bucket if int(entry[0] / width) == k]
        if not cur:
            return None
        if len(cur) == len(bucket):
            bucket.clear()
        else:
            bucket[:] = [
                entry for entry in bucket if int(entry[0] / width) != k
            ]
            # The remainder may or may not share a year; leave it MIXED —
            # that only costs the tested path again on a later load.
        cur.sort()
        self._cur = cur
        self._ci = 0
        self._cur_year = k
        self._k = k
        return cur[0]

    def _flush_cur(self) -> None:
        """Return unconsumed current-run entries to their bucket."""
        year = self._cur_year
        if year is None:
            return
        rest = self._cur[self._ci :]
        if rest:
            i = year & self._mask
            bucket = self._buckets[i]
            if bucket:
                if self._byear[i] != year:
                    self._byear[i] = self.MIXED
            else:
                self._byear[i] = year
            bucket.extend(rest)
        self._cur = []
        self._ci = 0
        self._cur_year = None

    def _resize(self, nbuckets: int) -> None:
        self._flush_cur()
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._width = self._estimate_width(entries, self._width)
        self._nbuckets = nbuckets
        self._mask = mask = nbuckets - 1
        width = self._width
        buckets: list[list] = [[] for _ in range(nbuckets)]
        byear = [self.MIXED] * nbuckets
        lo = None
        for entry in entries:
            k = int(entry[0] / width)
            i = k & mask
            bucket = buckets[i]
            if bucket:
                if byear[i] != k:
                    byear[i] = self.MIXED
            else:
                byear[i] = k
            bucket.append(entry)
            if lo is None or entry[0] < lo:
                lo = entry[0]
        self._buckets = buckets
        self._byear = byear
        # The smallest pending event defines the new certified floor.
        self._k = 0 if lo is None else int(lo / width)

    @staticmethod
    def _estimate_width(entries: list, fallback: float) -> float:
        """Bucket width tuned to the current population: 16 x median gap.

        Uniformly spread timers (period P over N timers) have median gap
        P/N, giving ~16 events per bucket.  The multiplier trades the two
        amortized costs: each event pays one membership test when its
        bucket-year loads (independent of bucket occupancy), while the
        fixed per-load overhead (scan step, list split, sort call) is
        shared across the whole occupancy — so wider buckets amortize
        better until the O(b log b) sort catches up, with the sweet spot
        measured in the low tens.  Deterministic: a pure function of the
        pending set, so identically-driven simulators resize identically.
        """
        if len(entries) < 2:
            return fallback
        times = sorted(entry[0] for entry in entries)
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if not gaps:
            return fallback  # all events at one instant: keep the old width
        gaps.sort()
        width = 16.0 * gaps[len(gaps) // 2]
        return width if width > 0.0 else fallback
