"""Units and shared constants for the simulator.

All simulation time is measured in seconds (floats).  These helpers exist so
that configuration code reads like the paper ("1 ms propagation delay",
"1 Mbps links") instead of bare magic numbers.
"""

from __future__ import annotations

#: One millisecond, in seconds.
MILLISECONDS = 1e-3

#: One microsecond, in seconds.
MICROSECONDS = 1e-6

#: One second.
SECONDS = 1.0

#: One minute, in seconds.
MINUTES = 60.0

#: Bits per kilobit / megabit (network convention: powers of ten).
KILOBITS = 1_000
MEGABITS = 1_000_000

#: Bytes in a kilobyte for packet sizing (network convention: powers of ten).
KILOBYTES = 1_000

#: Bits per byte.
BITS_PER_BYTE = 8


def transmission_delay(size_bytes: int, bandwidth_bps: float) -> float:
    """Time (seconds) to serialize ``size_bytes`` onto a link of ``bandwidth_bps``.

    >>> transmission_delay(500, 1 * MEGABITS)
    0.004
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return (size_bytes * BITS_PER_BYTE) / bandwidth_bps
