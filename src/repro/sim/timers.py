"""Timer helpers layered over the event engine.

Routing protocols are timer machines: RIP has periodic and timeout timers,
RIP/DBF damp triggered updates with a random holddown, BGP rate-limits with
per-neighbor MRAI timers.  These classes capture the three shapes used in the
paper so protocol code stays declarative.

All three classes are slotted and fire through pre-bound methods — no
closures are rebuilt per cycle — and repeating/restartable timers recycle
their :class:`~repro.sim.engine.EventHandle` via ``Simulator.reschedule``
instead of allocating a fresh one every firing.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .engine import EventHandle, Simulator

__all__ = ["OneShotTimer", "PeriodicTimer", "JitteredInterval"]


class JitteredInterval:
    """An interval drawn uniformly from ``[base - jitter, base + jitter]``.

    Used for RIP periodic updates (30 s +/- jitter), triggered-update damping
    (U(1, 5) expressed as base 3, jitter 2) and BGP MRAI (U(25, 35) or
    U(2.5, 3.5) in the paper's two parameterizations).
    """

    __slots__ = ("base", "jitter", "_rng")

    def __init__(self, base: float, jitter: float, rng: random.Random) -> None:
        if base <= 0:
            raise ValueError(f"base interval must be positive, got {base}")
        if jitter < 0 or jitter > base:
            raise ValueError(f"jitter must be within [0, base], got {jitter}")
        self.base = base
        self.jitter = jitter
        self._rng = rng

    def sample(self) -> float:
        """Draw one interval."""
        if self.jitter == 0:
            return self.base
        return self._rng.uniform(self.base - self.jitter, self.base + self.jitter)

    @property
    def mean(self) -> float:
        return self.base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JitteredInterval(base={self.base}, jitter={self.jitter})"


class OneShotTimer:
    """Restartable single-fire timer.

    ``start`` (re)arms the timer; ``cancel`` disarms it.  The ``running``
    property lets protocols implement "if the damping timer is already
    running, just mark more work pending" logic directly.
    """

    __slots__ = ("_sim", "_action", "_handle")

    def __init__(self, sim: Simulator, action: Callable[[], None]) -> None:
        self._sim = sim
        self._action = action
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and self._handle.pending

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute fire time while running, else None."""
        return self._handle.time if self.running else None

    def start(self, delay: float) -> None:
        """(Re)arm to fire ``delay`` seconds from now, replacing any pending fire."""
        handle = self._handle
        if handle is not None and handle._fired and not handle._cancelled:
            # The previous firing consumed the queue entry: recycle the handle.
            self._sim.reschedule(handle, delay)
            return
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._action()


class PeriodicTimer:
    """Repeating timer with per-cycle jittered intervals.

    Each cycle's length is drawn independently from ``interval`` — this is how
    RFC 2453 spaces periodic updates to avoid synchronization between routers.
    """

    __slots__ = ("_sim", "_interval", "_action", "_handle", "_running")

    def __init__(
        self,
        sim: Simulator,
        interval: JitteredInterval,
        action: Callable[[], None],
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._action = action
        self._handle: Optional[EventHandle] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start the cycle; first fire after ``initial_delay`` (default: one
        sampled interval)."""
        self.stop()
        self._running = True
        delay = self._interval.sample() if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        # The handle that invoked us just fired; re-arm it for the next cycle
        # (same object, new heap entry) before running the action so the
        # action can stop()/start() the timer without racing the cycle.
        self._handle = self._sim.reschedule(self._handle, self._interval.sample())
        self._action()
