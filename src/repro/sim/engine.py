"""Discrete-event simulation engine.

A :class:`Simulator` owns virtual time and a binary-heap event queue.  Events
are callbacks scheduled at absolute or relative times; ties are broken by
insertion order so execution is fully deterministic.  Cancellation is done
lazily: :meth:`EventHandle.cancel` marks the entry and the main loop skips it.

The queue stores plain ``(time, seq, handle)`` tuples so heap sifting
compares tuples directly instead of going through dataclass ``__lt__``.
Hot-path schedulers that would otherwise allocate a closure per event
(link serialization/propagation) use :meth:`Simulator.schedule_call`, which
stores the argument on the handle; batch producers use
:meth:`Simulator.schedule_many`; repeating timers recycle their handle via
:meth:`Simulator.reschedule`.

This is the substrate every other package builds on (links schedule packet
arrivals, protocols schedule timers, traffic sources schedule departures).
"""

from __future__ import annotations

import heapq
import itertools
import time as _wallclock
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = ["Simulator", "EventHandle", "EventStats", "SimulationError"]

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised on invalid scheduler use (e.g. scheduling into the past)."""


class EventHandle:
    """Cancelable reference to a scheduled event."""

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired")

    def __init__(
        self, time: float, callback: Callable[..., None], args: tuple = ()
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call repeatedly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} {state}>"


@dataclass(frozen=True)
class EventStats:
    """Snapshot of scheduler health, taken via :meth:`Simulator.stats`."""

    events_processed: int
    cancelled_skipped: int
    queue_depth_hwm: int
    pending: int
    wall_time: float
    sim_time: float

    @property
    def events_per_sec(self) -> float:
        """Executed events per wall-clock second spent inside ``run()``."""
        return self.events_processed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def cancel_ratio(self) -> float:
        """Fraction of popped queue entries that were lazily-cancelled husks."""
        popped = self.events_processed + self.cancelled_skipped
        return self.cancelled_skipped / popped if popped else 0.0


class Simulator:
    """Deterministic discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("hello at t=1.5"))
        sim.run()
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_events_processed",
        "_cancel_skipped",
        "_queue_hwm",
        "_wall_time",
        "_running",
        "_stopped",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancel_skipped = 0
        self._queue_hwm = 0
        self._wall_time = 0.0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (skipped cancellations excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries not yet popped (includes cancelled ones)."""
        return len(self._queue)

    @property
    def run_wall_time(self) -> float:
        """Cumulative wall-clock seconds spent inside :meth:`run` so far.

        Monotone across successive ``run()`` calls, so a profiler span can
        attribute in-engine wall time to a phase by differencing this around
        the phase's ``run(until=...)`` segment (see
        :class:`repro.obs.profiler.PhaseProfiler`).
        """
        return self._wall_time

    def stats(self) -> EventStats:
        """Immutable snapshot of throughput/queue/cancellation counters."""
        return EventStats(
            events_processed=self._events_processed,
            cancelled_skipped=self._cancel_skipped,
            queue_depth_hwm=self._queue_hwm,
            pending=len(self._queue),
            wall_time=self._wall_time,
            sim_time=self._now,
        )

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:  # rejects negatives, NaN and +inf
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        time = self._now + delay
        handle = EventHandle(time, callback)
        queue = self._queue
        heapq.heappush(queue, (time, next(self._seq), handle))
        if len(queue) > self._queue_hwm:
            self._queue_hwm = len(queue)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if not self._now <= time < _INF:  # rejects the past, NaN and +inf
            raise SimulationError(
                f"time must be finite and >= now, got t={time!r} (now={self._now})"
            )
        handle = EventHandle(time, callback)
        queue = self._queue
        heapq.heappush(queue, (time, next(self._seq), handle))
        if len(queue) > self._queue_hwm:
            self._queue_hwm = len(queue)
        return handle

    def schedule_call(
        self, delay: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Fast path: schedule ``callback(*args)`` without a closure.

        Equivalent to ``schedule(delay, lambda: callback(*args))`` but stores
        the arguments on the handle, so per-packet hot paths (link
        serialization, propagation) allocate no lambda cell objects.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        time = self._now + delay
        handle = EventHandle(time, callback, args)
        queue = self._queue
        heapq.heappush(queue, (time, next(self._seq), handle))
        if len(queue) > self._queue_hwm:
            self._queue_hwm = len(queue)
        return handle

    def schedule_call_at(
        self, time: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Fast path: schedule ``callback(*args)`` at absolute virtual ``time``.

        The absolute-time sibling of :meth:`schedule_call` — no closure, no
        ``now + delay`` float round trip, so an event scheduled at ``time``
        fires at exactly ``time``.  Used by the topology event layer, whose
        schedules are expressed in absolute event times.
        """
        if not self._now <= time < _INF:
            raise SimulationError(
                f"time must be finite and >= now, got t={time!r} (now={self._now})"
            )
        handle = EventHandle(time, callback, args)
        queue = self._queue
        heapq.heappush(queue, (time, next(self._seq), handle))
        if len(queue) > self._queue_hwm:
            self._queue_hwm = len(queue)
        return handle

    def schedule_many(
        self, events: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[EventHandle]:
        """Schedule a batch of ``(delay, callback)`` pairs in one call.

        Delays are relative to *now* (like :meth:`schedule`); insertion order
        within the batch is preserved for same-time ties.  Returns the handles
        in input order.
        """
        now = self._now
        queue = self._queue
        push = heapq.heappush
        seq = self._seq
        handles: list[EventHandle] = []
        for delay, callback in events:
            if not 0.0 <= delay < _INF:
                raise SimulationError(
                    f"delay must be finite and >= 0, got {delay!r}"
                )
            time = now + delay
            handle = EventHandle(time, callback)
            push(queue, (time, next(seq), handle))
            handles.append(handle)
        if len(queue) > self._queue_hwm:
            self._queue_hwm = len(queue)
        return handles

    def reschedule(self, handle: EventHandle, delay: float) -> EventHandle:
        """Re-arm an already-fired handle ``delay`` seconds from now.

        Recycles the handle object instead of allocating a new one — the fast
        path for repeating timers.  Only a handle whose queue entry has been
        consumed (i.e. it fired) may be recycled; a pending or
        lazily-cancelled handle still has a live queue entry, and re-arming it
        would resurrect that entry.
        """
        if not handle._fired:
            raise SimulationError(
                "reschedule() requires a handle that has already fired"
            )
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        time = self._now + delay
        handle.time = time
        handle._fired = False
        handle._cancelled = False
        queue = self._queue
        heapq.heappush(queue, (time, next(self._seq), handle))
        if len(queue) > self._queue_hwm:
            self._queue_hwm = len(queue)
        return handle

    # -------------------------------------------------------------- execution

    def stop(self) -> None:
        """Stop a running :meth:`run` loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is drained."""
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            heapq.heappop(queue)
            self._cancel_skipped += 1
        return queue[0][0] if queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains, ``until`` is reached,
        or ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until`` is
        given, virtual time is advanced to exactly ``until`` on return even if
        the queue drained earlier, so repeated ``run(until=...)`` calls form a
        contiguous timeline.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        started = _wallclock.perf_counter()
        try:
            while queue and not self._stopped:
                time, _, handle = queue[0]
                if handle._cancelled:
                    pop(queue)
                    self._cancel_skipped += 1
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(queue)
                self._now = time
                handle._fired = True
                args = handle.args
                if args:
                    handle.callback(*args)
                else:
                    handle.callback()
                executed += 1
                self._events_processed += 1
        finally:
            self._wall_time += _wallclock.perf_counter() - started
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return executed
