"""Discrete-event simulation engine.

A :class:`Simulator` owns virtual time and an event queue.  Events are
callbacks scheduled at absolute or relative times; ties are broken by
insertion order so execution is fully deterministic.  Cancellation is done
lazily: :meth:`EventHandle.cancel` marks the entry and the main loop skips it.

The queue stores plain ``(time, seq, handle)`` tuples behind a pluggable
backend (see :mod:`repro.sim.eventq`): the default binary heap, or a
calendar queue tuned for large periodic-timer populations, selected via
``Simulator(queue="heap"|"calendar")`` or the ``REPRO_EVENT_QUEUE``
environment variable.  Both backends pop in the identical ``(time, seq)``
total order, so results are bit-identical under either.

Hot-path schedulers that would otherwise allocate a closure per event
(link serialization/propagation) use :meth:`Simulator.schedule_call`, which
stores the argument on the handle; batch producers use
:meth:`Simulator.schedule_many` / :meth:`Simulator.schedule_many_at`;
repeating timers recycle their handle via :meth:`Simulator.reschedule`.

This is the substrate every other package builds on (links schedule packet
arrivals, protocols schedule timers, traffic sources schedule departures).
"""

from __future__ import annotations

import itertools
import time as _wallclock
from dataclasses import dataclass
from heapq import heappop
from typing import Callable, Iterable, Optional

from .eventq import CalendarEventQueue, HeapEventQueue, make_event_queue

__all__ = ["Simulator", "EventHandle", "EventStats", "SimulationError"]

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised on invalid scheduler use (e.g. scheduling into the past)."""


class EventHandle:
    """Cancelable reference to a scheduled event."""

    __slots__ = ("time", "callback", "args", "_cancelled", "_fired")

    def __init__(
        self, time: float, callback: Callable[..., None], args: tuple = ()
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call repeatedly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} {state}>"


@dataclass(frozen=True)
class EventStats:
    """Snapshot of scheduler health, taken via :meth:`Simulator.stats`."""

    events_processed: int
    cancelled_skipped: int
    queue_depth_hwm: int
    pending: int
    wall_time: float
    sim_time: float
    #: Which event-queue backend produced these numbers ("heap"/"calendar").
    queue_backend: str = "heap"

    @property
    def events_per_sec(self) -> float:
        """Executed events per wall-clock second spent inside ``run()``."""
        return self.events_processed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def cancel_ratio(self) -> float:
        """Fraction of popped queue entries that were lazily-cancelled husks."""
        popped = self.events_processed + self.cancelled_skipped
        return self.cancelled_skipped / popped if popped else 0.0


class Simulator:
    """Deterministic discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("hello at t=1.5"))
        sim.run()

    ``queue`` selects the event-queue backend (``"heap"`` or
    ``"calendar"``); ``None`` defers to ``$REPRO_EVENT_QUEUE`` and then the
    heap default.  Backend choice never changes results, only speed.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_push",
        "_seq",
        "_events_processed",
        "_cancel_skipped",
        "_wall_time",
        "_running",
        "_stopped",
    )

    def __init__(self, queue: Optional[str] = None) -> None:
        self._now = 0.0
        self._queue = make_event_queue(queue)
        self._push = self._queue.push
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancel_skipped = 0
        self._wall_time = 0.0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def queue_backend(self) -> str:
        """Name of the active event-queue backend ("heap" or "calendar")."""
        return self._queue.name

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (skipped cancellations excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries not yet popped (includes cancelled ones)."""
        return len(self._queue)

    @property
    def run_wall_time(self) -> float:
        """Cumulative wall-clock seconds spent inside :meth:`run` so far.

        Monotone across successive ``run()`` calls, so a profiler span can
        attribute in-engine wall time to a phase by differencing this around
        the phase's ``run(until=...)`` segment (see
        :class:`repro.obs.profiler.PhaseProfiler`).
        """
        return self._wall_time

    def stats(self) -> EventStats:
        """Immutable snapshot of throughput/queue/cancellation counters."""
        return EventStats(
            events_processed=self._events_processed,
            cancelled_skipped=self._cancel_skipped,
            queue_depth_hwm=self._queue.hwm,
            pending=len(self._queue),
            wall_time=self._wall_time,
            sim_time=self._now,
            queue_backend=self._queue.name,
        )

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if not 0.0 <= delay < _INF:  # rejects negatives, NaN and +inf
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        time = self._now + delay
        handle = EventHandle(time, callback)
        self._push((time, next(self._seq), handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if not self._now <= time < _INF:  # rejects the past, NaN and +inf
            raise SimulationError(
                f"time must be finite and >= now, got t={time!r} (now={self._now})"
            )
        handle = EventHandle(time, callback)
        self._push((time, next(self._seq), handle))
        return handle

    def schedule_call(
        self, delay: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Fast path: schedule ``callback(*args)`` without a closure.

        Equivalent to ``schedule(delay, lambda: callback(*args))`` but stores
        the arguments on the handle, so per-packet hot paths (link
        serialization, propagation) allocate no lambda cell objects.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        time = self._now + delay
        handle = EventHandle(time, callback, args)
        self._push((time, next(self._seq), handle))
        return handle

    def schedule_call_at(
        self, time: float, callback: Callable[..., None], *args
    ) -> EventHandle:
        """Fast path: schedule ``callback(*args)`` at absolute virtual ``time``.

        The absolute-time sibling of :meth:`schedule_call` — no closure, no
        ``now + delay`` float round trip, so an event scheduled at ``time``
        fires at exactly ``time``.  Used by the topology event layer, whose
        schedules are expressed in absolute event times.
        """
        if not self._now <= time < _INF:
            raise SimulationError(
                f"time must be finite and >= now, got t={time!r} (now={self._now})"
            )
        handle = EventHandle(time, callback, args)
        self._push((time, next(self._seq), handle))
        return handle

    def schedule_many(
        self, events: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[EventHandle]:
        """Schedule a batch of ``(delay, callback)`` pairs in one call.

        Delays are relative to *now* (like :meth:`schedule`); insertion order
        within the batch is preserved for same-time ties.  Returns the handles
        in input order.
        """
        now = self._now
        push = self._push
        seq = self._seq
        handles: list[EventHandle] = []
        for delay, callback in events:
            if not 0.0 <= delay < _INF:
                raise SimulationError(
                    f"delay must be finite and >= 0, got {delay!r}"
                )
            time = now + delay
            handle = EventHandle(time, callback)
            push((time, next(seq), handle))
            handles.append(handle)
        return handles

    def schedule_many_at(
        self, events: Iterable[tuple[float, Callable[[], None]]]
    ) -> list[EventHandle]:
        """Schedule a batch of ``(time, callback)`` pairs at absolute times.

        The absolute-time sibling of :meth:`schedule_many` — times are exact
        (no ``now + delay`` float round trip), insertion order within the
        batch is preserved for same-time ties.  This is how array-generated
        producers (the CBR source's whole emission schedule) enter the queue
        without a per-event Python round trip through ``schedule``.
        """
        now = self._now
        push = self._push
        seq = self._seq
        handles: list[EventHandle] = []
        for time, callback in events:
            if not now <= time < _INF:
                raise SimulationError(
                    f"time must be finite and >= now, got t={time!r} (now={now})"
                )
            handle = EventHandle(time, callback)
            push((time, next(seq), handle))
            handles.append(handle)
        return handles

    def reschedule(self, handle: EventHandle, delay: float) -> EventHandle:
        """Re-arm an already-fired handle ``delay`` seconds from now.

        Recycles the handle object instead of allocating a new one — the fast
        path for repeating timers.  Only a handle whose queue entry has been
        consumed (i.e. it fired) may be recycled: a pending handle still has
        a live queue entry, and re-arming it would resurrect that entry.
        Cancellation is sticky — a handle cancelled at any point (even after
        it fired) stays dead, so "fire, cancel inside the action, re-arm"
        raises instead of producing a ghost event.
        """
        if handle._cancelled:
            raise SimulationError(
                "reschedule() of a cancelled handle (cancellation is sticky; "
                "schedule a fresh event instead)"
            )
        if not handle._fired:
            raise SimulationError(
                "reschedule() requires a handle that has already fired"
            )
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        time = self._now + delay
        handle.time = time
        handle._fired = False
        self._push((time, next(self._seq), handle))
        return handle

    # -------------------------------------------------------------- execution

    def stop(self) -> None:
        """Stop a running :meth:`run` loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is drained."""
        queue = self._queue
        while True:
            entry = queue.peek()
            if entry is None:
                return None
            if entry[2]._cancelled:
                queue.pop()
                self._cancel_skipped += 1
                continue
            return entry[0]

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains, ``until`` is reached,
        or ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until``
        is given, virtual time is advanced to exactly ``until`` on return —
        but only when no event at or before ``until`` is left pending (the
        queue drained, or the next event lies beyond ``until``), so repeated
        ``run(until=...)`` calls form a contiguous timeline.  A loop broken
        early by ``max_events`` or :meth:`stop` keeps ``now`` at the last
        executed event: fast-forwarding past still-pending events would let
        ``peek_time()`` report the past and new ``schedule()`` calls land
        after earlier events.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        started = _wallclock.perf_counter()
        try:
            if type(queue) is HeapEventQueue:
                # Inlined heap loop: peek is a plain index and pop the raw
                # C heappop, saving two method calls per event on the
                # default backend's hot path.
                heap = queue._q
                pop = heappop
                while heap and not self._stopped:
                    time, _, handle = heap[0]
                    if handle._cancelled:
                        pop(heap)
                        self._cancel_skipped += 1
                        continue
                    if until is not None and time > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(heap)
                    self._now = time
                    handle._fired = True
                    args = handle.args
                    if args:
                        handle.callback(*args)
                    else:
                        handle.callback()
                    executed += 1
                    self._events_processed += 1
            elif type(queue) is CalendarEventQueue:
                # Inlined calendar loop: steady-state consumption is an
                # index bump into the current sorted run; peek() is only
                # paid when the run is exhausted and the scan must load
                # the next bucket-year (CalendarEventQueue.pop keeps its
                # shrink check in peek() precisely so this stays exact).
                while not self._stopped:
                    ci = queue._ci
                    cur = queue._cur
                    if ci >= len(cur):
                        if queue.peek() is None:
                            break
                        ci = queue._ci
                        cur = queue._cur
                    time, _, handle = cur[ci]
                    if handle._cancelled:
                        queue._ci = ci + 1
                        queue._n -= 1
                        self._cancel_skipped += 1
                        continue
                    if until is not None and time > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    queue._ci = ci + 1
                    queue._n -= 1
                    self._now = time
                    handle._fired = True
                    args = handle.args
                    if args:
                        handle.callback(*args)
                    else:
                        handle.callback()
                    executed += 1
                    self._events_processed += 1
            else:  # pragma: no cover - no third backend ships today
                peek = queue.peek
                pop = queue.pop
                while not self._stopped:
                    entry = peek()
                    if entry is None:
                        break
                    time, _, handle = entry
                    if handle._cancelled:
                        pop()
                        self._cancel_skipped += 1
                        continue
                    if until is not None and time > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop()
                    self._now = time
                    handle._fired = True
                    args = handle.args
                    if args:
                        handle.callback(*args)
                    else:
                        handle.callback()
                    executed += 1
                    self._events_processed += 1
        finally:
            self._wall_time += _wallclock.perf_counter() - started
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self._now = until
        return executed
