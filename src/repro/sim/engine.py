"""Discrete-event simulation engine.

A :class:`Simulator` owns virtual time and a binary-heap event queue.  Events
are callbacks scheduled at absolute or relative times; ties are broken by
insertion order so execution is fully deterministic.  Cancellation is done
lazily: :meth:`EventHandle.cancel` marks the entry and the main loop skips it.

This is the substrate every other package builds on (links schedule packet
arrivals, protocols schedule timers, traffic sources schedule departures).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid scheduler use (e.g. scheduling into the past)."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Cancelable reference to a scheduled event."""

    __slots__ = ("time", "callback", "_cancelled", "_fired")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call repeatedly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("hello at t=1.5"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (skipped cancellations excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries not yet popped (includes cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._seq), handle))
        return handle

    def stop(self) -> None:
        """Stop a running :meth:`run` loop after the current event returns."""
        self._stopped = True

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is drained."""
        while self._queue and self._queue[0].handle.cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains, ``until`` is reached,
        or ``max_events`` have executed.

        Returns the number of events executed by this call.  When ``until`` is
        given, virtual time is advanced to exactly ``until`` on return even if
        the queue drained earlier, so repeated ``run(until=...)`` calls form a
        contiguous timeline.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                entry = self._queue[0]
                if entry.handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = entry.time
                entry.handle._fired = True
                entry.handle.callback()
                executed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return executed
