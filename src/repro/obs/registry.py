"""Typed runtime metrics: counters, gauges, histograms, and their registry.

The paper's evaluation attributes packet loss to *phases* of convergence;
doing the same for the simulator's own runtime needs typed metrics the
subsystems can publish into.  A :class:`MetricsRegistry` owns a flat
namespace of :class:`Counter` / :class:`Gauge` / :class:`Histogram`
instruments, created lazily by name.

Cost model (mirrors the ``TraceBus.wants_*`` contract): nothing in the hot
path ever consults a registry.  Producers keep bumping their always-on plain
integers (``TraceCounters``, ``EventStats``, queue counters); the obs layer
*subscribes* collectors to the trace bus only when observation is enabled,
and harvests the integer counters once per run.  A disabled registry is
therefore never touched — zero allocations, zero attribute loads — which the
overhead-guard tests in ``tests/obs`` pin.

``self_check`` validates internal consistency (histogram bucket monotonicity,
bucket-sum/count agreement, non-negative counters) so report corruption —
whether from a bug or a bad deserialization — is detected rather than
silently published; the mutation test corrupts a bucket boundary and asserts
the check reports it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram boundaries for queue-depth style distributions.
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-value metric that also tracks its high-water mark."""

    __slots__ = ("name", "value", "hwm")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.hwm: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.hwm:
            self.hwm = value

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value, "hwm": self.hwm}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value}, hwm={self.hwm})"


class Histogram:
    """Cumulative-free bucketed distribution.

    ``bounds`` are the strictly increasing upper edges of the finite
    buckets; ``counts`` has ``len(bounds) + 1`` entries, the last being the
    overflow bucket (observations above every bound).  ``observe`` is
    O(log buckets) via bisect.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bound")
        if any(b >= c for b, c in zip(self.bounds, self.bounds[1:])):
            raise ValueError(
                f"histogram {self.name!r} bounds must be strictly increasing: "
                f"{self.bounds}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Flat namespace of typed metrics, created lazily by name.

    ``counter``/``gauge``/``histogram`` are create-or-get: asking twice for
    the same name returns the same instrument, and asking for an existing
    name with a different type is an error (one name, one meaning).

    ``enabled`` is the registry-wide master switch the attach paths consult
    *once* (like a ``wants_*`` guard) before wiring any collector; a
    disabled registry is never subscribed anywhere and so costs nothing.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------ instruments

    def _get(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def get(self, name: str) -> Optional[Metric]:
        """The instrument registered under ``name``, or None."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        for name in sorted(self._metrics):
            yield self._metrics[name]

    # ------------------------------------------------------------ aggregation

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place (and return it).

        Merge semantics follow each instrument's meaning: counters are
        extensive so they **sum**; gauges are last-value snapshots whose
        only order-free combination is the **max** (of both value and
        high-water mark — merging per-shard clocks or depths yields the
        fleet-wide peak); histograms require identical bucket bounds and
        add counts element-wise.  Merging the registries of a sharded run
        therefore equals the registry of the unsharded run (property-tested
        in ``tests/obs/test_registry.py``), and ``self_check()`` holds on
        the result.  Name/type collisions raise ``ValueError`` (one name,
        one meaning — same rule as ``_get``).
        """
        for metric in other:
            name = metric.name
            existing = self._metrics.get(name)
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name)
                if existing is None:
                    mine.value = metric.value
                    mine.hwm = metric.hwm
                else:
                    mine.value = max(mine.value, metric.value)
                    mine.hwm = max(mine.hwm, metric.hwm)
            else:
                mine = self.histogram(name, metric.bounds)
                if mine.bounds != metric.bounds:
                    raise ValueError(
                        f"histogram {name!r} bounds mismatch: "
                        f"{list(mine.bounds)} vs {list(metric.bounds)}"
                    )
                for bucket, count in enumerate(metric.counts):
                    mine.counts[bucket] += count
                mine.count += metric.count
                mine.total += metric.total
        return self

    # -------------------------------------------------------------- snapshots

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready view of every metric, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def to_dict(self) -> dict:
        """Lossless JSON-ready serialization (``from_dict`` round-trips)."""
        return {"enabled": self.enabled, "metrics": self.snapshot()}

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        """Rebuild a registry serialized by :meth:`to_dict`."""
        registry = cls(enabled=bool(payload.get("enabled", True)))
        for name, data in payload.get("metrics", {}).items():
            kind = data.get("kind")
            if kind == "counter":
                registry.counter(name).value = int(data["value"])
            elif kind == "gauge":
                gauge = registry.gauge(name)
                gauge.value = float(data["value"])
                gauge.hwm = float(data["hwm"])
            elif kind == "histogram":
                hist = registry.histogram(name, data["bounds"])
                counts = [int(c) for c in data["counts"]]
                if len(counts) != len(hist.bounds) + 1:
                    raise ValueError(
                        f"histogram {name!r} has {len(counts)} buckets for "
                        f"{len(hist.bounds)} bounds"
                    )
                hist.counts = counts
                hist.count = int(data["count"])
                hist.total = float(data["total"])
            else:
                raise ValueError(f"metric {name!r} has unknown kind {kind!r}")
        return registry

    def self_check(self) -> list[str]:
        """Internal-consistency audit; returns human-readable problems.

        Catches corruption that would otherwise propagate silently into
        reports: non-monotonic histogram bounds, bucket counts that no
        longer sum to the observation count, negative counters, gauges
        whose high-water mark trails their value.
        """
        problems: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                if metric.value < 0:
                    problems.append(f"counter {name!r} is negative: {metric.value}")
            elif isinstance(metric, Gauge):
                if metric.hwm < metric.value:
                    problems.append(
                        f"gauge {name!r} high-water mark {metric.hwm} is below "
                        f"its value {metric.value}"
                    )
            elif isinstance(metric, Histogram):
                bounds = metric.bounds
                if any(b >= c for b, c in zip(bounds, bounds[1:])):
                    problems.append(
                        f"histogram {name!r} bucket bounds are not strictly "
                        f"increasing: {list(bounds)}"
                    )
                if len(metric.counts) != len(bounds) + 1:
                    problems.append(
                        f"histogram {name!r} has {len(metric.counts)} buckets "
                        f"for {len(bounds)} bounds (want {len(bounds) + 1})"
                    )
                if any(c < 0 for c in metric.counts):
                    problems.append(
                        f"histogram {name!r} has a negative bucket count: "
                        f"{metric.counts}"
                    )
                if sum(metric.counts) != metric.count:
                    problems.append(
                        f"histogram {name!r} bucket counts sum to "
                        f"{sum(metric.counts)} but {metric.count} observations "
                        "were recorded"
                    )
        return problems
