"""Profile report: JSON schema, self-check, and human-readable summary.

``python -m repro profile`` emits one JSON document tying the three
observability sources together — the phase span tree, the metric registry
snapshot, and the sweep telemetry.  The format is versioned and
self-checkable: :func:`check_report` validates structure and internal
consistency (it embeds the registry's histogram invariants), so CI can
schema-check every emitted report and a corrupted report fails loudly
instead of feeding bad numbers into a regression dashboard.
"""

from __future__ import annotations

import numbers
from typing import Any, Optional

__all__ = ["SCHEMA_VERSION", "REPORT_KIND", "build_report", "check_report", "format_report"]

SCHEMA_VERSION = 1
REPORT_KIND = "repro-profile-report"


def build_report(
    scenario: dict,
    observation: dict,
    sweep: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Assemble the versioned report document.

    ``observation`` is ``RunObservation.to_dict()`` (``phases`` + ``metrics``);
    ``sweep`` is ``SweepTelemetry.to_dict()`` or None; ``meta`` carries
    free-form context (config profile, CLI flags).
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "meta": meta or {},
        "scenario": scenario,
        "phases": observation.get("phases"),
        "metrics": observation.get("metrics", {}),
        "sweep": sweep,
    }


# --------------------------------------------------------------------------
# Schema check
# --------------------------------------------------------------------------


def _is_num(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_span(span: Any, path: str, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span must be an object, got {type(span).__name__}")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        problems.append(f"{path}: span needs a non-empty string 'name'")
    wall = span.get("wall_s")
    if not _is_num(wall) or wall < 0:
        problems.append(f"{path}: 'wall_s' must be a number >= 0, got {wall!r}")
    for key in ("events",):
        if key in span and not isinstance(span[key], int):
            problems.append(f"{path}: {key!r} must be an integer, got {span[key]!r}")
    for key in ("run_wall_s", "sim_s", "mem_peak_kb"):
        if key in span and not _is_num(span[key]):
            problems.append(f"{path}: {key!r} must be a number, got {span[key]!r}")
    children = span.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: 'children' must be a list")
        return
    for i, child in enumerate(children):
        _check_span(child, f"{path}.children[{i}]", problems)


def _check_metric(name: str, metric: Any, problems: list[str]) -> None:
    path = f"metrics[{name!r}]"
    if not isinstance(metric, dict):
        problems.append(f"{path}: must be an object")
        return
    kind = metric.get("kind")
    if kind == "counter":
        value = metric.get("value")
        if not isinstance(value, int) or value < 0:
            problems.append(f"{path}: counter value must be an int >= 0, got {value!r}")
    elif kind == "gauge":
        value, hwm = metric.get("value"), metric.get("hwm")
        if not _is_num(value) or not _is_num(hwm):
            problems.append(f"{path}: gauge needs numeric 'value' and 'hwm'")
        elif hwm < value:
            problems.append(f"{path}: gauge hwm {hwm} is below its value {value}")
    elif kind == "histogram":
        bounds = metric.get("bounds")
        counts = metric.get("counts")
        count = metric.get("count")
        total = metric.get("total")
        if not isinstance(bounds, list) or not bounds:
            problems.append(f"{path}: histogram needs a non-empty 'bounds' list")
            return
        if any(not _is_num(b) for b in bounds):
            problems.append(f"{path}: histogram bounds must be numbers")
            return
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            problems.append(
                f"{path}: histogram bounds are not strictly increasing: {bounds}"
            )
        if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
            problems.append(
                f"{path}: histogram needs len(bounds)+1 bucket counts, got "
                f"{counts!r}"
            )
        elif any(not isinstance(c, int) or c < 0 for c in counts):
            problems.append(f"{path}: histogram bucket counts must be ints >= 0")
        elif not isinstance(count, int) or sum(counts) != count:
            problems.append(
                f"{path}: histogram bucket counts sum to {sum(counts)} but "
                f"'count' says {count!r}"
            )
        if not _is_num(total):
            problems.append(f"{path}: histogram 'total' must be a number")
    else:
        problems.append(f"{path}: unknown metric kind {kind!r}")


def _check_sweep(sweep: Any, problems: list[str]) -> None:
    if not isinstance(sweep, dict):
        problems.append("sweep: must be an object or null")
        return
    workers = sweep.get("workers")
    if not isinstance(workers, int) or workers < 1:
        problems.append(f"sweep: 'workers' must be an int >= 1, got {workers!r}")
    for key in ("wall_s", "busy_s", "utilization"):
        if not _is_num(sweep.get(key)):
            problems.append(f"sweep: {key!r} must be a number")
    util = sweep.get("utilization")
    if _is_num(util) and not 0.0 <= util <= 1.0:
        problems.append(f"sweep: utilization must be within [0, 1], got {util!r}")
    for key in ("n_timeouts", "n_retries", "total_tasks", "completed_tasks"):
        value = sweep.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"sweep: {key!r} must be an int >= 0, got {value!r}")
    seeds = sweep.get("seeds")
    if not isinstance(seeds, list):
        problems.append("sweep: 'seeds' must be a list")
        return
    for i, timing in enumerate(seeds):
        if not isinstance(timing, dict):
            problems.append(f"sweep.seeds[{i}]: must be an object")
            continue
        if not isinstance(timing.get("protocol"), str):
            problems.append(f"sweep.seeds[{i}]: 'protocol' must be a string")
        for key in ("degree", "seed"):
            if not isinstance(timing.get(key), int):
                problems.append(f"sweep.seeds[{i}]: {key!r} must be an int")
        if not isinstance(timing.get("ok"), bool):
            problems.append(f"sweep.seeds[{i}]: 'ok' must be a bool")
        elapsed = timing.get("elapsed_s")
        if elapsed is not None and (not _is_num(elapsed) or elapsed < 0):
            problems.append(
                f"sweep.seeds[{i}]: 'elapsed_s' must be null or a number >= 0"
            )


def check_report(report: Any) -> list[str]:
    """Validate a profile report; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(report, dict):
        return ["report must be a JSON object"]
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, got "
            f"{report.get('schema_version')!r}"
        )
    if report.get("kind") != REPORT_KIND:
        problems.append(f"kind must be {REPORT_KIND!r}, got {report.get('kind')!r}")
    scenario = report.get("scenario")
    if not isinstance(scenario, dict):
        problems.append("scenario: must be an object")
    phases = report.get("phases")
    if phases is not None:
        _check_span(phases, "phases", problems)
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics: must be an object")
    else:
        for name, metric in metrics.items():
            _check_metric(name, metric, problems)
    if report.get("sweep") is not None:
        _check_sweep(report["sweep"], problems)
    return problems


# --------------------------------------------------------------------------
# Human summary
# --------------------------------------------------------------------------


def _format_span(span: dict, lines: list[str], depth: int) -> None:
    label = f"{'  ' * depth}{span['name']}"
    extra = ""
    if "events" in span:
        rate = (
            span["events"] / span["run_wall_s"]
            if span.get("run_wall_s")
            else 0.0
        )
        extra = (
            f"  [{span['events']:,} events, {span.get('sim_s', 0.0):.1f} sim-s"
            + (f", {rate:,.0f} ev/s" if rate else "")
            + "]"
        )
    if span.get("mem_peak_kb") is not None:
        extra += f"  (peak {span['mem_peak_kb']:,.0f} KiB)"
    lines.append(f"{label:<28} {span['wall_s']*1e3:>9.1f} ms{extra}")
    for child in span.get("children", ()):
        _format_span(child, lines, depth + 1)


def format_report(report: dict) -> str:
    """Render the report for humans: phase tree, key metrics, sweep summary."""
    lines: list[str] = []
    scenario = report.get("scenario", {})
    lines.append(
        "profile: "
        + " ".join(f"{k}={v}" for k, v in scenario.items() if not isinstance(v, dict))
    )
    phases = report.get("phases")
    if phases:
        lines.append("")
        lines.append("phases (wall time):")
        _format_span(phases, lines, 0)
    metrics = report.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(metrics):
            m = metrics[name]
            if m["kind"] == "counter":
                lines.append(f"  {name:<32} {m['value']:>12,}")
            elif m["kind"] == "gauge":
                lines.append(f"  {name:<32} {m['value']:>12,.2f} (hwm {m['hwm']:,.2f})")
            else:
                mean = m["total"] / m["count"] if m["count"] else 0.0
                lines.append(
                    f"  {name:<32} n={m['count']:,} mean={mean:.3g} "
                    f"buckets={m['counts']}"
                )
    sweep = report.get("sweep")
    if sweep:
        lines.append("")
        lines.append(
            f"sweep: {sweep['completed_tasks']}/{sweep['total_tasks']} seeds "
            f"({sweep['resumed_tasks']} resumed) in {sweep['wall_s']:.2f}s on "
            f"{sweep['workers']} worker(s), utilization "
            f"{sweep['utilization']:.0%}, {sweep['n_timeouts']} timeout(s), "
            f"{sweep['n_retries']} retried attempt(s)"
        )
        slowest = sweep.get("slowest")
        if slowest and slowest.get("elapsed_s") is not None:
            lines.append(
                f"  slowest seed: {slowest['protocol']} "
                f"degree={slowest['degree']} seed={slowest['seed']} "
                f"({slowest['elapsed_s']:.2f}s)"
            )
    return "\n".join(lines)
