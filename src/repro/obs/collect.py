"""Run-level observation: wiring metrics + profiler into one simulation.

:class:`RunObservation` is the bundle a caller hands to
:func:`repro.experiments.scenario.run_scenario` (and the ``repro profile``
CLI builds): a :class:`~repro.obs.registry.MetricsRegistry`, a
:class:`~repro.obs.profiler.PhaseProfiler`, and the trace-bus collectors
that feed the registry during the run.

Cost contract: ``attach`` subscribes collectors only when the observation is
enabled.  A disabled observation (``RunObservation.disabled()``) leaves the
bus guards (``wants_*``) untouched, so the packet hot path still allocates
no records — the overhead-guard test in ``tests/obs`` pins this with a
publish-counting bus, mirroring ``tests/sim/test_tracing_guards.py``.

Everything cheap-and-always-on (engine :class:`EventStats`, the bus's
:class:`TraceCounters`, queue/channel integers) is harvested once in
``finalize`` rather than observed per event.
"""

from __future__ import annotations

from typing import Optional

from ..sim.tracing import MessageRecord, TraceBus
from .profiler import NULL_PROFILER, PhaseProfiler
from .registry import MetricsRegistry

__all__ = ["ProtocolTraffic", "RunObservation", "QUEUE_DEPTH_BUCKETS"]

#: Bucket upper edges for the per-channel queue-depth HWM distribution
#: (queues are DEFAULT_QUEUE_CAPACITY=20 packets by default, so the last
#: finite bucket sits at capacity and the overflow bucket catches larger
#: configured capacities).
QUEUE_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0)


class ProtocolTraffic:
    """Per-protocol control-plane traffic counters, fed by the trace bus.

    Subscribes to ``"message"`` records and maintains, per protocol label,
    message / route-entry / withdrawal / byte counters in the registry
    (``proto.<name>.messages`` etc.).  Must be ``close()``d when the run is
    over so long-lived processes don't accumulate dead bus subscribers.
    """

    def __init__(self, bus: TraceBus, registry: MetricsRegistry) -> None:
        self._bus: Optional[TraceBus] = bus
        self._registry = registry
        self._per_protocol: dict[str, tuple] = {}
        bus.subscribe("message", self._on_message)

    def _on_message(self, record: MessageRecord) -> None:
        counters = self._per_protocol.get(record.protocol)
        if counters is None:
            reg = self._registry
            prefix = f"proto.{record.protocol}"
            counters = (
                reg.counter(f"{prefix}.messages"),
                reg.counter(f"{prefix}.routes"),
                reg.counter(f"{prefix}.withdrawals"),
                reg.counter(f"{prefix}.bytes"),
            )
            self._per_protocol[record.protocol] = counters
        messages, routes, withdrawals, nbytes = counters
        messages.inc()
        routes.inc(record.n_routes)
        if record.is_withdrawal:
            withdrawals.inc()
        nbytes.inc(record.size_bytes)

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        if self._bus is not None:
            self._bus.unsubscribe("message", self._on_message)
            self._bus = None

    def __enter__(self) -> "ProtocolTraffic":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RunObservation:
    """Metrics + profiling for one scenario run.

    Usage::

        obs = RunObservation(trace_memory=False)
        result = run_scenario("dbf", 4, 7, config, obs=obs)
        report = obs.to_dict()          # {"phases": ..., "metrics": ...}

    ``RunObservation.disabled()`` builds an inert instance whose ``attach``
    and ``finalize`` do nothing — useful for call sites that want one code
    path — and whose profiler hands out no-op spans.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
        trace_memory: bool = False,
        enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry(enabled)
        if profiler is not None:
            self.profiler = profiler
        else:
            self.profiler = (
                PhaseProfiler(trace_memory=trace_memory) if enabled else NULL_PROFILER
            )
        self._traffic: Optional[ProtocolTraffic] = None
        self._finalized = False

    @classmethod
    def disabled(cls) -> "RunObservation":
        """An inert observation: attaches nothing, collects nothing."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    # -------------------------------------------------------------- lifecycle

    def attach(self, bus: TraceBus) -> None:
        """Wire the bus-driven collectors (no-op when disabled)."""
        if not self.registry.enabled or self._traffic is not None:
            return
        self._traffic = ProtocolTraffic(bus, self.registry)

    def finalize(self, sim=None, network=None, bus=None) -> None:
        """Harvest the always-on counters and release bus subscriptions.

        Safe to call repeatedly; only the first call harvests.  Each source
        is optional so partial setups (tests, other drivers) can finalize
        whatever they have.
        """
        if self._finalized:
            return
        self._finalized = True
        if self._traffic is not None:
            self._traffic.close()
            self._traffic = None
        if not self.registry.enabled:
            return
        reg = self.registry
        if sim is not None:
            stats = sim.stats()
            reg.counter("engine.events").inc(stats.events_processed)
            reg.counter("engine.cancelled_skipped").inc(stats.cancelled_skipped)
            reg.gauge("engine.queue_depth_hwm").set(stats.queue_depth_hwm)
            reg.gauge("engine.run_wall_s").set(stats.wall_time)
            reg.gauge("engine.sim_s").set(stats.sim_time)
            reg.gauge("engine.events_per_sec").set(stats.events_per_sec)
        if bus is not None:
            for name, value in bus.counters.as_dict().items():
                reg.counter(f"trace.{name}").inc(value)
        if network is not None:
            depth_hist = reg.histogram("net.link_queue_hwm", QUEUE_DEPTH_BUCKETS)
            hwm = 0
            transmitted = 0
            for link in network.iter_links():
                link_hwm = link.queue_depth_hwm()
                depth_hist.observe(link_hwm)
                if link_hwm > hwm:
                    hwm = link_hwm
                transmitted += link.packets_transmitted
            reg.gauge("net.queue_depth_hwm").set(hwm)
            reg.counter("net.packets_transmitted").inc(transmitted)
        self.profiler.finish()

    # -------------------------------------------------------------- reporting

    def to_dict(self) -> dict:
        """JSON-ready view: profiler span tree plus metric snapshot."""
        return {
            "phases": self.profiler.to_dict() if self.profiler.enabled else None,
            "metrics": self.registry.snapshot(),
        }
