"""Packet flight recorder: bounded trace rings, autopsies, causal timelines.

The paper's results are *explanations* — which packets died in a transient
loop, which update message flipped which FIB entry — not just counts.  This
module is the forensic half of the observability layer:

* :class:`FlightRecorder` — fixed-size ring buffers, one per trace kind,
  subscribed to the :class:`~repro.sim.tracing.TraceBus` through the same
  ``wants_*`` guard discipline every collector uses.  Detached, it costs
  nothing: no subscription, no guard flip, no record allocation on the
  packet hot path (the golden on/off test pins bit-identical results).
* :func:`packet_autopsy` — stitches one packet's send/forward/deliver/drop
  records into a hop-by-hop walk with drop cause, loop detection, and the
  FIB entry each hop consulted.
* :func:`build_causal_timeline` — links routing-protocol messages to the
  FIB changes they triggered (via the ``cause`` field threaded through
  ``routing.base``), reconstructing the update wave from failure to
  convergence with per-node first/last-change timestamps.
* Post-mortem dumps — a versioned JSON snapshot of the rings written when a
  validation monitor fires, with a :func:`check_dump` self-validator
  mirroring :func:`repro.obs.report.check_report`.
* :func:`perfetto_trace` — Chrome trace-event JSON viewable in Perfetto
  (``pid``/``tid`` map to node ids, ``ts`` is microseconds).

See ``docs/tracing.md`` for ring sizing and the dump schema.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..metrics.loops import first_loop
from ..metrics.traceio import _decode, _encode
from ..sim.tracing import (
    TRACE_KINDS,
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
)

__all__ = [
    "DEFAULT_CAPACITIES",
    "DUMP_KIND",
    "DUMP_SCHEMA_VERSION",
    "Ring",
    "FlightRecorder",
    "Hop",
    "PacketAutopsy",
    "packet_autopsy",
    "packet_autopsies",
    "format_autopsy",
    "FibFlip",
    "NodeActivity",
    "WaveSummary",
    "CausalTimeline",
    "build_causal_timeline",
    "format_causal_timeline",
    "build_dump",
    "save_dump",
    "load_dump",
    "dump_records",
    "check_dump",
    "perfetto_trace",
    "write_perfetto",
]

#: Default ring capacities (records kept per kind).  Sized for one scenario:
#: a 5x5 quick mesh warm start installs ~600 routes and a paper-scale
#: post-failure window generates a few thousand packet events; link
#: transitions are rare.  See docs/tracing.md "Ring sizing".
DEFAULT_CAPACITIES: dict[str, int] = {
    "packet": 8192,
    "route": 4096,
    "link": 512,
    "message": 4096,
}

DUMP_SCHEMA_VERSION = 1
DUMP_KIND = "repro-flight-dump"


class Ring:
    """Record buffer that keeps exactly the newest ``capacity`` appends.

    Logically a ring; physically an append-only list trimmed to capacity on
    every read (``records``/``len``/``iter``/``evicted``/:meth:`trim`).  The
    split exists for the hot path: :attr:`push` is the raw C-level
    ``list.append``, which is what :class:`FlightRecorder` subscribes to the
    bus — a Python-level ``append`` wrapper would roughly double the
    recorder's per-record cost (see benchmarks/bench_overhead.py).  The
    price is that peak memory between reads is the run's record volume, not
    ``capacity``; scenario-scoped recordings stay small, and long-lived
    users can call :meth:`trim` periodically.
    """

    __slots__ = ("capacity", "push", "_evicted", "_buf")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._evicted = 0
        # The list object must never be rebound: ``push`` (and any bus
        # subscription holding it) aliases its bound C append forever.
        self._buf: list = []
        self.push = self._buf.append

    def append(self, record: object) -> None:
        """Append one record (convenience wrapper around :attr:`push`)."""
        self.push(record)

    def trim(self) -> None:
        """Drop everything but the newest ``capacity`` records."""
        buf = self._buf
        overflow = len(buf) - self.capacity
        if overflow > 0:
            del buf[:overflow]
            self._evicted += overflow

    @property
    def appended(self) -> int:
        """Total records ever appended (exact, trim-independent)."""
        return self._evicted + len(self._buf)

    @property
    def evicted(self) -> int:
        """How many records have been pushed out by newer ones."""
        self.trim()
        return self._evicted

    def records(self) -> list:
        """Snapshot of the retained records, oldest first."""
        self.trim()
        return list(self._buf)

    def clear(self) -> None:
        self._buf.clear()
        self._evicted = 0

    def __len__(self) -> int:
        self.trim()
        return len(self._buf)

    def __iter__(self):
        self.trim()
        return iter(self._buf)


class FlightRecorder:
    """Bounded, always-consistent recording of a run's trace records.

    Attach to a bus to start recording (this flips the bus's ``wants_*``
    guards on, like any subscriber); ``close()`` detaches and returns the
    hot path to the zero-allocation regime while keeping the rings readable.
    Works as a context manager.
    """

    def __init__(self, capacities: Optional[Mapping[str, int]] = None) -> None:
        sizes = dict(DEFAULT_CAPACITIES)
        if capacities:
            unknown = set(capacities) - set(TRACE_KINDS)
            if unknown:
                raise ValueError(f"unknown trace kinds {sorted(unknown)}")
            sizes.update(capacities)
        self.rings: dict[str, Ring] = {
            kind: Ring(sizes[kind]) for kind in TRACE_KINDS
        }
        self._bus: Optional[TraceBus] = None

    @property
    def attached(self) -> bool:
        return self._bus is not None

    def attach(self, bus: TraceBus) -> None:
        """Subscribe every ring to ``bus`` (exactly one bus at a time)."""
        if self._bus is not None:
            raise RuntimeError("recorder is already attached to a bus")
        self._bus = bus
        for kind, ring in self.rings.items():
            # Subscribe the C-level push, not the Python append wrapper: at
            # flight-recorder record rates the wrapper call itself is the
            # single largest cost (see Ring docstring).
            bus.subscribe(kind, ring.push)

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); rings stay readable."""
        if self._bus is None:
            return
        for kind, ring in self.rings.items():
            self._bus.unsubscribe(kind, ring.push)
            ring.trim()
        self._bus = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- analysis

    def records(self, kind: str) -> list:
        """Retained records of ``kind``, oldest first."""
        return self.rings[kind].records()

    def packet_ids(self) -> list[int]:
        """Distinct packet ids present in the packet ring, first-seen order."""
        seen: dict[int, None] = {}
        for record in self.rings["packet"]:
            seen.setdefault(record.packet_id, None)
        return list(seen)

    def packet_autopsy(self, packet_id: int) -> "PacketAutopsy":
        return packet_autopsy(
            self.records("packet"), packet_id, route_changes=self.records("route")
        )

    def autopsies(self) -> dict[int, "PacketAutopsy"]:
        return packet_autopsies(
            self.records("packet"), route_changes=self.records("route")
        )

    def timeline(
        self, since: Optional[float] = None, dest: Optional[int] = None
    ) -> "CausalTimeline":
        return build_causal_timeline(
            self.records("route"),
            messages=self.records("message"),
            link_events=self.records("link"),
            since=since,
            dest=dest,
        )

    def snapshot(
        self,
        meta: Optional[dict] = None,
        violations: Iterable[str] = (),
        counters: Optional[Mapping[str, int]] = None,
    ) -> dict:
        """The post-mortem dump document (see :func:`build_dump`)."""
        return build_dump(self, meta=meta, violations=violations, counters=counters)


# --------------------------------------------------------------------------
# Per-packet lifecycle reconstruction
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Hop:
    """One forwarding decision in a packet's life."""

    time: float
    node: int
    kind: str  # "send" | "forward" | "deliver" | "drop"
    ttl: int
    #: FIB next hop this node held for the packet's destination at this
    #: instant, reconstructed from route-change records (None = unknown —
    #: no route records available, or the entry predates the route ring).
    fib_next_hop: Optional[int] = None


@dataclass(frozen=True)
class PacketAutopsy:
    """Everything reconstructable about one packet's walk."""

    packet_id: int
    flow_id: int
    dst: Optional[int]
    outcome: str  # "delivered" | "dropped" | "in_flight"
    drop_cause: Optional[DropCause]
    path: tuple[int, ...]  # node visits, consecutive duplicates collapsed
    loop: Optional[tuple[int, ...]]  # first node cycle, e.g. (7, 8, 7)
    hops: tuple[Hop, ...]
    #: True when the earliest record is not the "send" (ring evicted it).
    truncated: bool

    @property
    def n_hops(self) -> int:
        return max(0, len(self.path) - 1)


def packet_autopsy(
    packets: Iterable[PacketRecord],
    packet_id: int,
    route_changes: Iterable[RouteChangeRecord] = (),
) -> PacketAutopsy:
    """Stitch one packet's records into a hop-by-hop account.

    ``packets`` may contain many interleaved packets (a ring snapshot, a
    trace file); only records matching ``packet_id`` are used.  Pass the
    matching ``route_changes`` to also reconstruct the FIB entry each hop
    consulted.  Raises ``KeyError`` if the packet left no records at all.
    """
    events = [r for r in packets if r.packet_id == packet_id]
    if not events:
        raise KeyError(f"no trace records for packet {packet_id}")
    events.sort(key=lambda r: r.time)  # stable: preserves publish order at ties
    return _autopsy_from_events(packet_id, events, list(route_changes))


def packet_autopsies(
    packets: Iterable[PacketRecord],
    route_changes: Iterable[RouteChangeRecord] = (),
) -> dict[int, PacketAutopsy]:
    """Autopsies for every packet present in ``packets``, one pass."""
    by_id: dict[int, list[PacketRecord]] = {}
    for record in packets:
        by_id.setdefault(record.packet_id, []).append(record)
    routes = list(route_changes)
    out: dict[int, PacketAutopsy] = {}
    for pid, events in by_id.items():
        events.sort(key=lambda r: r.time)
        out[pid] = _autopsy_from_events(pid, events, routes)
    return out


def _fib_at(
    routes: list[RouteChangeRecord], node: int, dest: int, when: float
) -> Optional[int]:
    """Next hop ``node`` held for ``dest`` at ``when`` (last change wins)."""
    hop: Optional[int] = None
    known = False
    for r in routes:
        if r.node == node and r.dest == dest and r.time <= when:
            hop = r.new_next_hop
            known = True
    return hop if known else None


def _autopsy_from_events(
    packet_id: int,
    events: list[PacketRecord],
    routes: list[RouteChangeRecord],
) -> PacketAutopsy:
    terminal = events[-1]
    outcome = "in_flight"
    drop_cause = None
    for record in events:
        if record.kind == "deliver":
            outcome = "delivered"
        elif record.kind == "drop":
            outcome = "dropped"
            drop_cause = record.cause
    dst = next((r.dst for r in events if r.dst is not None), None)

    path: list[int] = []
    for record in events:
        if not path or path[-1] != record.node:
            path.append(record.node)

    hops = tuple(
        Hop(
            time=r.time,
            node=r.node,
            kind=r.kind,
            ttl=r.ttl,
            fib_next_hop=(
                _fib_at(routes, r.node, dst, r.time)
                if dst is not None and r.kind in ("send", "forward")
                else None
            ),
        )
        for r in events
    )
    return PacketAutopsy(
        packet_id=packet_id,
        flow_id=events[0].flow_id,
        dst=dst,
        outcome=outcome,
        drop_cause=drop_cause,
        path=tuple(path),
        loop=first_loop(path),
        hops=hops,
        truncated=events[0].kind != "send",
    )


def format_autopsy(autopsy: PacketAutopsy, origin: float = 0.0) -> str:
    """Human-readable account of one packet's walk."""
    head = (
        f"packet {autopsy.packet_id} (flow {autopsy.flow_id}"
        + (f", dst {autopsy.dst}" if autopsy.dst is not None else "")
        + f"): {autopsy.outcome}"
    )
    if autopsy.drop_cause is not None:
        head += f" ({autopsy.drop_cause.value})"
    head += f" after {autopsy.n_hops} hop(s)"
    if autopsy.truncated:
        head += "  [record start evicted from ring]"
    lines = [head]
    for hop in autopsy.hops:
        fib = f"  fib->{hop.fib_next_hop}" if hop.fib_next_hop is not None else ""
        lines.append(
            f"  t={hop.time - origin:+9.3f}s  {hop.kind:<8} @ node "
            f"{hop.node:<4} ttl={hop.ttl}{fib}"
        )
    if autopsy.loop is not None:
        lines.append("  loop: " + " -> ".join(map(str, autopsy.loop)))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Causal convergence timeline
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FibFlip:
    """One FIB change and the control-plane event attributed to it."""

    record: RouteChangeRecord
    #: The routing message that triggered the change (matched through the
    #: record's ``("message", sender)`` cause); None for link/timer causes
    #: or when the message record was not captured.
    trigger: Optional[MessageRecord]


@dataclass(frozen=True)
class NodeActivity:
    """When one node's FIB first and last changed during the window."""

    node: int
    first_change: float
    last_change: float
    n_changes: int


@dataclass(frozen=True)
class WaveSummary:
    """The reconvergence wave attributed to one topology event.

    A run with several link events (churn, flaps) has overlapping
    reconvergence waves; each event's window runs from its own instant to
    the next event's (the last to the end of the capture), and the FIB
    changes falling inside are its wave.  ``first_change``/``last_change``
    are ``None`` when the window was quiet.
    """

    event: LinkEventRecord
    first_change: Optional[float]
    last_change: Optional[float]
    n_changes: int


@dataclass(frozen=True)
class CausalTimeline:
    """The update wave: topology events -> per-node FIB churn -> quiescence."""

    since: Optional[float]
    links: tuple[LinkEventRecord, ...]
    flips: tuple[FibFlip, ...]
    #: Per-node activity, ordered by first change (the wave front).
    wave: tuple[NodeActivity, ...]
    #: Per-link-event reconvergence waves, in event order.
    waves: tuple[WaveSummary, ...] = ()

    @property
    def first_change(self) -> Optional[float]:
        return self.flips[0].record.time if self.flips else None

    @property
    def converged_at(self) -> Optional[float]:
        """Time of the last FIB change in the window (None if none)."""
        return self.flips[-1].record.time if self.flips else None


def build_causal_timeline(
    route_changes: Iterable[RouteChangeRecord],
    messages: Iterable[MessageRecord] = (),
    link_events: Iterable[LinkEventRecord] = (),
    since: Optional[float] = None,
    dest: Optional[int] = None,
) -> CausalTimeline:
    """Reconstruct the causally annotated update wave.

    Every route change whose cause is ``("message", sender)`` is linked to
    the newest captured message from that sender to that node at or before
    the change (message records carry send time; the change happens on
    arrival, so "latest at-or-before" is the triggering message as long as
    per-adjacency delivery is FIFO — which links and reliable channels are).
    """
    flips_src = [
        r
        for r in route_changes
        if (since is None or r.time >= since) and (dest is None or r.dest == dest)
    ]
    flips_src.sort(key=lambda r: r.time)
    links = tuple(
        e for e in link_events if since is None or e.time >= since
    )

    by_adjacency: dict[tuple[int, int], list[MessageRecord]] = {}
    for m in messages:
        by_adjacency.setdefault((m.sender, m.receiver), []).append(m)
    for history in by_adjacency.values():
        history.sort(key=lambda m: m.time)

    flips = []
    for r in flips_src:
        trigger = None
        if r.cause is not None and r.cause[0] == "message" and r.cause[1] is not None:
            history = by_adjacency.get((r.cause[1], r.node), ())
            for m in history:
                if m.time <= r.time:
                    trigger = m
                else:
                    break
        flips.append(FibFlip(record=r, trigger=trigger))

    activity: dict[int, NodeActivity] = {}
    for flip in flips:
        r = flip.record
        prior = activity.get(r.node)
        if prior is None:
            activity[r.node] = NodeActivity(r.node, r.time, r.time, 1)
        else:
            activity[r.node] = NodeActivity(
                r.node, prior.first_change, r.time, prior.n_changes + 1
            )
    wave = tuple(
        sorted(activity.values(), key=lambda a: (a.first_change, a.node))
    )

    # Attribute FIB churn to link events: event i owns [time_i, time_{i+1}),
    # the last window running to the end of the captured changes.
    ordered = sorted(links, key=lambda e: e.time)
    waves = []
    for i, event in enumerate(ordered):
        window_end = (
            ordered[i + 1].time if i + 1 < len(ordered) else float("inf")
        )
        in_window = [
            f.record.time
            for f in flips
            if event.time <= f.record.time < window_end
        ]
        waves.append(
            WaveSummary(
                event=event,
                first_change=in_window[0] if in_window else None,
                last_change=in_window[-1] if in_window else None,
                n_changes=len(in_window),
            )
        )
    return CausalTimeline(
        since=since, links=links, flips=tuple(flips), wave=wave,
        waves=tuple(waves),
    )


def _describe_cause(flip: FibFlip, origin: float) -> str:
    cause = flip.record.cause
    if cause is None:
        return ""
    kind, peer = cause
    if kind == "message":
        text = f"message from {peer}"
        if flip.trigger is not None:
            text += (
                f" ({flip.trigger.protocol}"
                f"{' withdrawal' if flip.trigger.is_withdrawal else ''}"
                f" sent t={flip.trigger.time - origin:+.3f}s)"
            )
        return f"  [{text}]"
    if peer is None:
        return f"  [{kind}]"
    return f"  [{kind} {peer}]"


def format_causal_timeline(
    timeline: CausalTimeline, origin: float = 0.0, max_events: int = 60
) -> str:
    """Render the update wave for humans (times relative to ``origin``)."""
    lines: list[str] = []
    for e in timeline.links:
        lines.append(
            f"  t={e.time - origin:+9.3f}s  link ({e.node_a}, {e.node_b}) "
            + ("restored" if e.up else "FAILED")
        )
    shown = timeline.flips[:max_events]
    for flip in shown:
        r = flip.record
        lines.append(
            f"  t={r.time - origin:+9.3f}s  node {r.node}: dest {r.dest} "
            f"{r.old_next_hop} -> {r.new_next_hop}"
            + _describe_cause(flip, origin)
        )
    if len(timeline.flips) > max_events:
        lines.append(
            f"  ... {len(timeline.flips) - max_events} more FIB changes omitted"
        )
    if timeline.wave:
        lines.append("  update wave (per-node first/last FIB change):")
        for a in timeline.wave:
            lines.append(
                f"    node {a.node:<4} first t={a.first_change - origin:+8.3f}s"
                f"  last t={a.last_change - origin:+8.3f}s"
                f"  ({a.n_changes} change(s))"
            )
    if len(timeline.waves) > 1:
        lines.append("  per-event reconvergence waves:")
        for w in timeline.waves:
            e = w.event
            label = "restore" if e.up else "fail"
            if w.n_changes:
                lines.append(
                    f"    t={e.time - origin:+8.3f}s {label} ({e.node_a}, "
                    f"{e.node_b}): {w.n_changes} FIB change(s), "
                    f"last t={w.last_change - origin:+.3f}s"
                )
            else:
                lines.append(
                    f"    t={e.time - origin:+8.3f}s {label} ({e.node_a}, "
                    f"{e.node_b}): quiet"
                )
    if timeline.converged_at is not None:
        lines.append(
            f"  last FIB change t={timeline.converged_at - origin:+.3f}s"
        )
    return "\n".join(lines) if lines else "  (no routing activity)"


# --------------------------------------------------------------------------
# Post-mortem dumps
# --------------------------------------------------------------------------


def build_dump(
    recorder: FlightRecorder,
    meta: Optional[dict] = None,
    violations: Iterable[str] = (),
    counters: Optional[Mapping[str, int]] = None,
) -> dict:
    """Assemble the versioned post-mortem document from a recorder."""
    rings = {}
    for kind in TRACE_KINDS:
        ring = recorder.rings[kind]
        rings[kind] = {
            "capacity": ring.capacity,
            "appended": ring.appended,
            "records": [_encode(r) for r in ring],
        }
    return {
        "schema_version": DUMP_SCHEMA_VERSION,
        "kind": DUMP_KIND,
        "meta": dict(meta or {}),
        "violations": [str(v) for v in violations],
        "counters": dict(counters) if counters is not None else None,
        "rings": rings,
    }


def save_dump(dump: dict, path: str) -> None:
    """Write a dump as JSON.  ``save -> load -> save`` is byte-identical."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(dump, f, indent=1)
        f.write("\n")


def load_dump(path: str) -> dict:
    """Read a dump written by :func:`save_dump`."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def dump_records(dump: dict) -> dict[str, list]:
    """Decode a dump's rings back into trace record objects.

    Records that no longer decode (an unknown kind from a newer writer) are
    skipped with one warning each, mirroring the sweep store's
    telemetry-record skip convention.
    """
    out: dict[str, list] = {}
    for kind, ring in dump.get("rings", {}).items():
        decoded = []
        for data in ring.get("records", ()):
            try:
                decoded.append(_decode(data))
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"skipping undecodable {kind!r} record in flight dump: "
                    f"type={data.get('type')!r}",
                    stacklevel=2,
                )
        out[kind] = decoded
    return out


def _check_ring(kind: str, ring: object, problems: list[str]) -> None:
    path = f"rings[{kind!r}]"
    if not isinstance(ring, dict):
        problems.append(f"{path}: must be an object")
        return
    capacity = ring.get("capacity")
    appended = ring.get("appended")
    records = ring.get("records")
    if not isinstance(capacity, int) or capacity <= 0:
        problems.append(f"{path}: 'capacity' must be an int > 0, got {capacity!r}")
        return
    if not isinstance(appended, int) or appended < 0:
        problems.append(f"{path}: 'appended' must be an int >= 0, got {appended!r}")
        return
    if not isinstance(records, list):
        problems.append(f"{path}: 'records' must be a list")
        return
    if len(records) > capacity:
        problems.append(
            f"{path}: holds {len(records)} records but capacity is {capacity}"
        )
    if len(records) > appended:
        problems.append(
            f"{path}: holds {len(records)} records but only {appended} were appended"
        )
    if appended > capacity and len(records) != capacity:
        problems.append(
            f"{path}: overflowed ({appended} appends) so it must be full, "
            f"holds {len(records)}/{capacity}"
        )
    last_time = None
    for i, data in enumerate(records):
        rpath = f"{path}.records[{i}]"
        if not isinstance(data, dict):
            problems.append(f"{rpath}: must be an object")
            continue
        if data.get("type") != kind:
            problems.append(
                f"{rpath}: 'type' must be {kind!r}, got {data.get('type')!r}"
            )
            continue
        t = data.get("time")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            problems.append(f"{rpath}: 'time' must be a number, got {t!r}")
            continue
        if last_time is not None and t < last_time:
            problems.append(
                f"{rpath}: time {t} goes backwards (previous {last_time})"
            )
        last_time = t
        try:
            _decode(data)
        except Exception as exc:  # noqa: BLE001 - any decode failure is a finding
            problems.append(f"{rpath}: does not decode: {exc}")


def check_dump(dump: object) -> list[str]:
    """Validate a flight dump; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(dump, dict):
        return ["dump must be a JSON object"]
    if dump.get("schema_version") != DUMP_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {DUMP_SCHEMA_VERSION}, got "
            f"{dump.get('schema_version')!r}"
        )
    if dump.get("kind") != DUMP_KIND:
        problems.append(f"kind must be {DUMP_KIND!r}, got {dump.get('kind')!r}")
    if not isinstance(dump.get("meta"), dict):
        problems.append("meta: must be an object")
    violations = dump.get("violations")
    if not isinstance(violations, list) or any(
        not isinstance(v, str) for v in violations
    ):
        problems.append("violations: must be a list of strings")
    counters = dump.get("counters")
    if counters is not None:
        if not isinstance(counters, dict):
            problems.append("counters: must be an object or null")
        else:
            for name, value in counters.items():
                if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                    problems.append(
                        f"counters[{name!r}]: must be an int >= 0, got {value!r}"
                    )
    rings = dump.get("rings")
    if not isinstance(rings, dict):
        problems.append("rings: must be an object")
        return problems
    unknown = set(rings) - set(TRACE_KINDS)
    if unknown:
        problems.append(f"rings: unknown kinds {sorted(unknown)}")
    for kind in TRACE_KINDS:
        if kind not in rings:
            problems.append(f"rings: missing kind {kind!r}")
            continue
        _check_ring(kind, rings[kind], problems)
    return problems


# --------------------------------------------------------------------------
# Chrome trace-event export (Perfetto)
# --------------------------------------------------------------------------


def _us(t: float) -> float:
    return round(t * 1e6, 3)


def perfetto_trace(
    packets: Iterable[PacketRecord] = (),
    route_changes: Iterable[RouteChangeRecord] = (),
    link_events: Iterable[LinkEventRecord] = (),
    messages: Iterable[MessageRecord] = (),
    extra: Iterable[dict] = (),
) -> dict:
    """Chrome trace-event JSON for the given records.

    Each simulated node becomes a "process" (``pid`` = ``tid`` = node id,
    named by a metadata event); packet lifecycle events, FIB changes,
    message sends, and link transitions become instant events on the node
    where they happened.  ``ts`` is microseconds and monotonic, so the file
    loads directly in Perfetto / ``chrome://tracing``.

    ``extra`` takes pre-built Chrome trace events on additional lanes —
    e.g. the per-shard window/barrier lanes from
    :func:`repro.obs.live.shard_lane_events` — on the same simulated-time
    axis.  Metadata (``ph: "M"``) events keep their position ahead of the
    merged, ts-sorted event stream.
    """
    packets = list(packets)
    route_changes = list(route_changes)
    link_events = list(link_events)
    messages = list(messages)

    nodes: set[int] = set()
    nodes.update(r.node for r in packets)
    nodes.update(r.node for r in route_changes)
    nodes.update(m.sender for m in messages)
    for e in link_events:
        nodes.add(e.node_a)
        nodes.add(e.node_b)

    events: list[dict] = []
    for r in packets:
        args = {"packet_id": r.packet_id, "flow": r.flow_id, "ttl": r.ttl}
        if r.dst is not None:
            args["dst"] = r.dst
        if r.cause is not None:
            args["cause"] = r.cause.value
        events.append(
            {
                "name": f"pkt {r.packet_id} {r.kind}",
                "cat": "packet",
                "ph": "i",
                "ts": _us(r.time),
                "pid": r.node,
                "tid": r.node,
                "s": "t",
                "args": args,
            }
        )
    for r in route_changes:
        args = {"dest": r.dest, "old": r.old_next_hop, "new": r.new_next_hop}
        if r.cause is not None:
            args["cause"] = list(r.cause)
        events.append(
            {
                "name": f"fib dest={r.dest}",
                "cat": "route",
                "ph": "i",
                "ts": _us(r.time),
                "pid": r.node,
                "tid": r.node,
                "s": "t",
                "args": args,
            }
        )
    for m in messages:
        events.append(
            {
                "name": f"{m.protocol} msg -> {m.receiver}",
                "cat": "message",
                "ph": "i",
                "ts": _us(m.time),
                "pid": m.sender,
                "tid": m.sender,
                "s": "t",
                "args": {
                    "receiver": m.receiver,
                    "n_routes": m.n_routes,
                    "withdrawal": m.is_withdrawal,
                    "bytes": m.size_bytes,
                },
            }
        )
    for e in link_events:
        events.append(
            {
                "name": f"link ({e.node_a}, {e.node_b}) "
                + ("up" if e.up else "DOWN"),
                "cat": "link",
                "ph": "i",
                "ts": _us(e.time),
                "pid": e.node_a,
                "tid": e.node_a,
                "s": "g",
                "args": {"peer": e.node_b, "up": e.up},
            }
        )
    extra_metadata: list[dict] = []
    for ev in extra:
        if ev.get("ph") == "M":
            extra_metadata.append(ev)
        else:
            events.append(ev)
    events.sort(key=lambda ev: ev["ts"])

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": node,
            "tid": node,
            "args": {"name": f"node {node}"},
        }
        for node in sorted(nodes)
    ] + extra_metadata
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_perfetto(trace: dict, path: str) -> None:
    """Write a :func:`perfetto_trace` document to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f, indent=1)
        f.write("\n")
