"""Sweep telemetry: per-seed runtime, worker utilisation, fault counts.

A paper-scale sweep runs hundreds of (protocol, degree, seed) tasks over a
supervised worker pool; knowing which seeds are slow, how busy the workers
were, and how often the fault-tolerance machinery fired (timeouts, worker
retries) is the difference between "the sweep is slow" and "bgp at degree 8
is the straggler".  :func:`repro.experiments.runner.run_sweep` fills a
:class:`SweepTelemetry` when handed one, and — when a
:class:`~repro.experiments.store.SweepStore` is attached — each per-seed
timing is appended to the shard log as a ``{"kind": "telemetry"}`` record
alongside the result shards (result loading skips them, so telemetry never
affects resumed-sweep identity).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["SeedTiming", "SweepTelemetry"]


@dataclass(frozen=True)
class SeedTiming:
    """Wall-clock accounting for one completed (protocol, degree, seed)."""

    protocol: str
    degree: int
    seed: int
    #: Seconds of simulation work (in-worker for pool runs, so queue wait is
    #: excluded; None when the duration could not be measured, e.g. a worker
    #: that died without reporting).
    elapsed_s: Optional[float]
    ok: bool
    #: Times the task was handed to a worker (1 = first try succeeded).
    attempts: int = 1
    timed_out: bool = False

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "degree": self.degree,
            "seed": self.seed,
            "elapsed_s": self.elapsed_s,
            "ok": self.ok,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }


class SweepTelemetry:
    """Accumulates one sweep's execution telemetry."""

    def __init__(self) -> None:
        self.workers = 1
        self.total_tasks = 0
        self.resumed_tasks = 0
        self.seeds: list[SeedTiming] = []
        self.n_timeouts = 0
        self.n_retries = 0
        self._started: Optional[float] = None
        self.wall_s = 0.0

    # -------------------------------------------------------------- lifecycle

    def begin(self, workers: int, total_tasks: int, resumed_tasks: int = 0) -> None:
        self.workers = max(1, workers)
        self.total_tasks = total_tasks
        self.resumed_tasks = resumed_tasks
        self._started = time.perf_counter()

    def record(
        self,
        protocol: str,
        degree: int,
        seed: int,
        ok: bool,
        elapsed_s: Optional[float],
        attempts: int = 1,
        timed_out: bool = False,
    ) -> SeedTiming:
        timing = SeedTiming(
            protocol=protocol,
            degree=degree,
            seed=seed,
            elapsed_s=elapsed_s,
            ok=ok,
            attempts=attempts,
            timed_out=timed_out,
        )
        self.seeds.append(timing)
        if timed_out:
            self.n_timeouts += 1
        if attempts > 1:
            self.n_retries += attempts - 1
        return timing

    def end(self) -> None:
        if self._started is not None:
            self.wall_s = time.perf_counter() - self._started
            self._started = None

    # ------------------------------------------------------------- aggregates

    @property
    def busy_s(self) -> float:
        """Total seconds workers spent simulating (measured seeds only)."""
        return sum(t.elapsed_s for t in self.seeds if t.elapsed_s is not None)

    @property
    def utilization(self) -> float:
        """Fraction of the worker-seconds budget spent simulating.

        1.0 means every worker simulated the whole sweep; low values point
        at stragglers, dispatch overhead, or an oversized pool.
        """
        budget = self.workers * self.wall_s
        return min(1.0, self.busy_s / budget) if budget > 0 else 0.0

    @property
    def slowest(self) -> Optional[SeedTiming]:
        timed = [t for t in self.seeds if t.elapsed_s is not None]
        return max(timed, key=lambda t: t.elapsed_s) if timed else None

    def to_dict(self) -> dict:
        """JSON-ready summary plus the per-seed timing list."""
        slowest = self.slowest
        return {
            "workers": self.workers,
            "total_tasks": self.total_tasks,
            "resumed_tasks": self.resumed_tasks,
            "completed_tasks": len(self.seeds),
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "n_timeouts": self.n_timeouts,
            "n_retries": self.n_retries,
            "slowest": slowest.to_dict() if slowest else None,
            "seeds": [t.to_dict() for t in self.seeds],
        }
