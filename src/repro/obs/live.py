"""Live run telemetry: a streaming run-event log plus live health views.

A sharded run (``repro.dist``) or a multi-hour sweep is a black box while
it executes: per-shard progress, barrier waits, relay volume, and stall
causes are invisible until the run ends.  This module is the streaming
counterpart of the post-hoc observability layers (:mod:`repro.obs.registry`,
:mod:`repro.obs.flight`):

* :class:`RunEventLog` — an append-only JSONL **run-event log**
  (``schema_version`` 1) with typed records: shard heartbeats, coordinator
  window/barrier summaries, per-seed sweep lifecycle, violations, stalls.
  Every record is flushed as written, so another process can tail the file
  while the run is still executing.  ``read_log -> write_log`` is
  byte-identical, and :func:`check_log` self-validates a log the same way
  ``check_report``/``check_dump`` validate their documents.
* :func:`summarize_log` / :func:`format_live` — fold a log (complete or
  in-flight) into a per-shard / per-sweep health view; ``python -m repro
  watch <log>`` renders it in place, from the file alone, so it works on a
  run owned by another process.
* :func:`shard_lane_events` — Chrome trace events giving every shard its
  own Perfetto lane (window spans, relay injections, barrier-wait
  fractions), merged with the packet/FIB lanes by
  :func:`repro.dist.merge.shard_perfetto_trace`.

The invariant inherited from the registry and the flight recorder: logging
is **harvest-only**.  Producers never consult the log; the writers read
already-maintained counters (``Simulator.events_processed``, relay
counters, sweep outcome tallies) strictly *between* engine events, so a
logged run stays byte-identical to an unlogged one (pinned by the
transparency tests).  See ``docs/live.md``.
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, TextIO, Union

__all__ = [
    "LOG_SCHEMA_VERSION",
    "LOG_KIND",
    "RECORD_KINDS",
    "RunEventLog",
    "open_live_log",
    "read_log",
    "write_log",
    "check_log",
    "ShardView",
    "SweepView",
    "LiveSummary",
    "summarize_log",
    "format_live",
    "watch",
    "shard_lane_events",
    "SHARD_LANE_PID",
    "COORDINATOR_PID",
]

LOG_SCHEMA_VERSION = 1
LOG_KIND = "repro-run-log"

#: Every record kind a version-1 log may contain.  ``header`` must be the
#: first record (and only the first); everything else may appear anywhere.
RECORD_KINDS = (
    "header",
    "heartbeat",
    "window",
    "seed",
    "sweep",
    "shard-end",
    "violation",
    "stall",
    "end",
)

#: Run flavors a header may declare (what produced the log).
RUN_KINDS = ("scenario", "shard", "sweep", "churn")

#: Perfetto lane ids: shard ``i`` renders as process ``SHARD_LANE_PID + i``
#: so lanes never collide with node ids (node pids are small integers).
SHARD_LANE_PID = 1_000_000
COORDINATOR_PID = 999_999


# --------------------------------------------------------------------------
# writer
# --------------------------------------------------------------------------


class RunEventLog:
    """Append-only JSONL writer for one run's event log.

    Every ``append`` writes one complete line and flushes it, so a crash
    loses at most the in-flight record and a concurrent reader never sees a
    torn prefix (:func:`read_log` additionally tolerates a torn tail).  The
    header line is written by the constructor; the writer is otherwise
    schema-agnostic — producers call the typed convenience methods below.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        run: str = "scenario",
        meta: Optional[dict] = None,
    ) -> None:
        if run not in RUN_KINDS:
            raise ValueError(f"unknown run kind {run!r} (one of {RUN_KINDS})")
        self.path = os.fspath(path)
        self._file: Optional[TextIO] = open(self.path, "w", encoding="utf-8")
        self.append(
            "header",
            schema_version=LOG_SCHEMA_VERSION,
            log_kind=LOG_KIND,
            run=run,
            meta=dict(meta or {}),
        )

    @property
    def closed(self) -> bool:
        return self._file is None

    def append(self, kind: str, **fields) -> None:
        """Write one ``{"kind": kind, **fields}`` record and flush it."""
        if self._file is None:
            raise ValueError(f"run-event log {self.path!r} is closed")
        record = {"kind": kind}
        record.update(fields)
        self._file.write(json.dumps(record) + "\n")
        self._file.flush()

    # ---------------------------------------------------- typed convenience

    def heartbeat(
        self,
        shard: int,
        clock: float,
        events: int,
        barrier: Optional[float] = None,
        relays_out: Optional[int] = None,
        relays_in: Optional[int] = None,
        busy_s: Optional[float] = None,
        wall_s: Optional[float] = None,
        phase: Optional[str] = None,
    ) -> None:
        """One shard's (or a 1-process run's) progress snapshot.

        ``clock``/``events`` are cumulative; the optional fields only make
        sense under the barrier protocol (``barrier`` = the window just
        completed, relay counts are cumulative, ``busy_s``/``wall_s`` are
        the worker's cumulative simulate/total wall seconds — their gap is
        barrier wait).  ``phase`` labels 1-process phase-boundary beats.
        """
        fields: dict = {"shard": shard, "clock": clock, "events": events}
        if barrier is not None:
            fields["barrier"] = barrier
        if relays_out is not None:
            fields["relays_out"] = relays_out
        if relays_in is not None:
            fields["relays_in"] = relays_in
        if busy_s is not None:
            fields["busy_s"] = busy_s
        if wall_s is not None:
            fields["wall_s"] = wall_s
        if phase is not None:
            fields["phase"] = phase
        self.append("heartbeat", **fields)

    def window(
        self,
        index: int,
        e_min: Optional[float],
        barrier: float,
        n_windows: int,
        n_relays: int,
        wall_s: float,
    ) -> None:
        """Coordinator barrier-window summary (coalesced; see docs/live.md).

        ``index`` counts emitted records; ``n_windows`` and ``n_relays``
        cover every barrier window since the previous record, whose
        coordinator wall-clock cost was ``wall_s`` seconds.
        """
        self.append(
            "window",
            index=index,
            e_min=e_min,
            barrier=barrier,
            n_windows=n_windows,
            n_relays=n_relays,
            wall_s=wall_s,
        )

    def seed(
        self,
        protocol: str,
        degree: int,
        seed: int,
        ok: bool,
        elapsed_s: Optional[float],
        attempts: int,
        timed_out: bool,
        done: int,
        total: int,
    ) -> None:
        """One sweep task's lifecycle record (mirrors ``SeedTiming``)."""
        self.append(
            "seed",
            protocol=protocol,
            degree=degree,
            seed=seed,
            ok=ok,
            elapsed_s=elapsed_s,
            attempts=attempts,
            timed_out=timed_out,
            done=done,
            total=total,
        )

    def sweep(self, phase: str, **fields) -> None:
        """Sweep lifecycle marker; ``phase`` is ``"begin"`` or ``"end"``."""
        if phase not in ("begin", "end"):
            raise ValueError(f"sweep phase must be begin|end, got {phase!r}")
        self.append("sweep", phase=phase, **fields)

    def shard_end(
        self, shard: int, events: int, relays_out: int, relays_in: int
    ) -> None:
        """Final per-shard totals as the coordinator reports them."""
        self.append(
            "shard-end",
            shard=shard,
            events=events,
            relays_out=relays_out,
            relays_in=relays_in,
        )

    def violation(self, text: str) -> None:
        self.append("violation", text=str(text))

    def stall(
        self, shard: int, window: float, reason: str, heartbeat: Optional[dict]
    ) -> None:
        """A shard hung or died; ``heartbeat`` is its last snapshot (or None)."""
        self.append(
            "stall", shard=shard, window=window, reason=reason,
            heartbeat=heartbeat,
        )

    def end(self, ok: bool, **fields) -> None:
        self.append("end", ok=ok, **fields)

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    def __enter__(self) -> "RunEventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_live_log(
    target: Union[None, str, os.PathLike, RunEventLog],
    run: str,
    meta: Optional[dict] = None,
) -> tuple[Optional[RunEventLog], bool]:
    """Coerce a ``--live-log`` argument into ``(log, owns)``.

    A path opens a fresh log (caller should close it: ``owns`` is True); an
    existing :class:`RunEventLog` is used as-is (``owns`` False) so one log
    can span several runs; None passes through.
    """
    if target is None:
        return None, False
    if isinstance(target, RunEventLog):
        return target, False
    return RunEventLog(target, run=run, meta=meta), True


# --------------------------------------------------------------------------
# reader + self-validation
# --------------------------------------------------------------------------


def read_log(path: Union[str, os.PathLike]) -> list[dict]:
    """Read a run-event log, tolerating the torn tail of a live writer.

    Reading stops at the first line that is not complete valid JSON — the
    same convention as the sweep store — so tailing a log mid-append never
    raises.
    """
    records: list[dict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as f:
        for line in f:
            if not line.endswith("\n"):
                break  # partial tail: the writer is mid-append
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break
    return records


def write_log(records: Iterable[dict], path: Union[str, os.PathLike]) -> None:
    """Write records as JSONL; ``read_log -> write_log`` is byte-identical."""
    with open(os.fspath(path), "w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record) + "\n")


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_fields(
    record: dict, index: int, spec: dict[str, tuple], problems: list[str]
) -> bool:
    """Validate required fields of one record against ``(checker, label)``."""
    ok = True
    for name, (checker, label) in spec.items():
        value = record.get(name)
        if not checker(value):
            problems.append(
                f"records[{index}] ({record.get('kind')}): {name!r} must be "
                f"{label}, got {value!r}"
            )
            ok = False
    return ok


_HEARTBEAT_SPEC = {
    "shard": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "clock": (_is_num, "a number"),
    "events": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
}
_WINDOW_SPEC = {
    "index": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "barrier": (_is_num, "a number"),
    "n_windows": (lambda v: _is_int(v) and v >= 1, "an int >= 1"),
    "n_relays": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "wall_s": (lambda v: _is_num(v) and v >= 0, "a number >= 0"),
}
_SEED_SPEC = {
    "protocol": (lambda v: isinstance(v, str) and v != "", "a non-empty string"),
    "degree": (_is_int, "an int"),
    "seed": (_is_int, "an int"),
    "ok": (lambda v: isinstance(v, bool), "a bool"),
    "attempts": (lambda v: _is_int(v) and v >= 1, "an int >= 1"),
    "timed_out": (lambda v: isinstance(v, bool), "a bool"),
    "done": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "total": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
}
_SHARD_END_SPEC = {
    "shard": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "events": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "relays_out": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "relays_in": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
}
_STALL_SPEC = {
    "shard": (lambda v: _is_int(v) and v >= 0, "an int >= 0"),
    "window": (_is_num, "a number"),
    "reason": (lambda v: isinstance(v, str) and v != "", "a non-empty string"),
}


def check_log(records: Iterable[dict]) -> list[str]:
    """Validate a run-event log; returns human-readable problems (empty = ok).

    Checks the header (first record, version, run kind), every record's
    kind and required fields, per-shard heartbeat monotonicity (cumulative
    event counts and clocks never go backwards), window-record index
    monotonicity, and sweep ``done <= total`` sanity.  Mirrors
    ``check_report``/``check_dump``: corruption is reported, never repaired.
    """
    problems: list[str] = []
    records = list(records)
    if not records:
        return ["log is empty (no header record)"]

    header = records[0]
    if not isinstance(header, dict) or header.get("kind") != "header":
        problems.append(
            f"records[0]: first record must be the header, got "
            f"{header.get('kind') if isinstance(header, dict) else header!r}"
        )
    else:
        if header.get("schema_version") != LOG_SCHEMA_VERSION:
            problems.append(
                f"header: schema_version must be {LOG_SCHEMA_VERSION}, got "
                f"{header.get('schema_version')!r}"
            )
        if header.get("log_kind") != LOG_KIND:
            problems.append(
                f"header: log_kind must be {LOG_KIND!r}, got "
                f"{header.get('log_kind')!r}"
            )
        if header.get("run") not in RUN_KINDS:
            problems.append(
                f"header: run must be one of {RUN_KINDS}, got "
                f"{header.get('run')!r}"
            )
        if not isinstance(header.get("meta"), dict):
            problems.append("header: meta must be an object")

    last_beat: dict[int, tuple[float, int]] = {}
    last_window_index: Optional[int] = None
    for i, record in enumerate(records[1:], start=1):
        if not isinstance(record, dict):
            problems.append(f"records[{i}]: must be an object")
            continue
        kind = record.get("kind")
        if kind not in RECORD_KINDS:
            problems.append(f"records[{i}]: unknown kind {kind!r}")
            continue
        if kind == "header":
            problems.append(f"records[{i}]: duplicate header")
        elif kind == "heartbeat":
            if not _check_fields(record, i, _HEARTBEAT_SPEC, problems):
                continue
            shard = record["shard"]
            prior = last_beat.get(shard)
            if prior is not None:
                if record["clock"] < prior[0]:
                    problems.append(
                        f"records[{i}]: shard {shard} clock {record['clock']} "
                        f"goes backwards (previous {prior[0]})"
                    )
                if record["events"] < prior[1]:
                    problems.append(
                        f"records[{i}]: shard {shard} event count "
                        f"{record['events']} goes backwards (previous {prior[1]})"
                    )
            last_beat[shard] = (record["clock"], record["events"])
        elif kind == "window":
            if not _check_fields(record, i, _WINDOW_SPEC, problems):
                continue
            if last_window_index is not None and record["index"] <= last_window_index:
                problems.append(
                    f"records[{i}]: window index {record['index']} does not "
                    f"increase (previous {last_window_index})"
                )
            last_window_index = record["index"]
        elif kind == "seed":
            if _check_fields(record, i, _SEED_SPEC, problems):
                if record["done"] > record["total"]:
                    problems.append(
                        f"records[{i}]: done {record['done']} exceeds total "
                        f"{record['total']}"
                    )
                if record.get("elapsed_s") is not None and not _is_num(
                    record["elapsed_s"]
                ):
                    problems.append(
                        f"records[{i}]: elapsed_s must be a number or null, "
                        f"got {record['elapsed_s']!r}"
                    )
        elif kind == "sweep":
            if record.get("phase") not in ("begin", "end"):
                problems.append(
                    f"records[{i}]: sweep phase must be begin|end, got "
                    f"{record.get('phase')!r}"
                )
        elif kind == "shard-end":
            _check_fields(record, i, _SHARD_END_SPEC, problems)
        elif kind == "violation":
            if not isinstance(record.get("text"), str):
                problems.append(f"records[{i}]: violation text must be a string")
        elif kind == "stall":
            _check_fields(record, i, _STALL_SPEC, problems)
        elif kind == "end":
            if not isinstance(record.get("ok"), bool):
                problems.append(f"records[{i}]: end 'ok' must be a bool")
    return problems


# --------------------------------------------------------------------------
# live summary (the watch view)
# --------------------------------------------------------------------------


@dataclass
class ShardView:
    """Rolling view of one shard (or the single process of a 1-shard run)."""

    shard: int
    clock: float = 0.0
    events: int = 0
    relays_out: int = 0
    relays_in: int = 0
    #: None until a heartbeat carries ``busy_s`` (1-process runs never do —
    #: there is no barrier to wait at, so the column renders blank).
    busy_s: Optional[float] = None
    wall_s: float = 0.0
    n_beats: int = 0
    phase: Optional[str] = None
    #: Events per wall second over the latest heartbeat interval (None until
    #: two beats with wall_s have been seen).
    rate: Optional[float] = None

    @property
    def barrier_wait_fraction(self) -> Optional[float]:
        """Fraction of wall time spent waiting at barriers, not simulating."""
        if self.busy_s is None or self.wall_s <= 0:
            return None
        return max(0.0, 1.0 - self.busy_s / self.wall_s)


@dataclass
class SweepView:
    """Rolling view of a sweep's task lifecycle."""

    total: int = 0
    done: int = 0
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    resumed: int = 0
    workers: int = 1
    last_label: Optional[str] = None
    wall_s: Optional[float] = None


@dataclass
class LiveSummary:
    """Everything the watch view renders, folded from a (partial) log."""

    run: str = "scenario"
    meta: dict = field(default_factory=dict)
    shards: dict[int, ShardView] = field(default_factory=dict)
    shard_totals: dict[int, dict] = field(default_factory=dict)
    n_windows: int = 0
    n_relays: int = 0
    last_barrier: Optional[float] = None
    sweep: Optional[SweepView] = None
    violations: list[str] = field(default_factory=list)
    stall: Optional[dict] = None
    ended: bool = False
    end_ok: Optional[bool] = None
    n_records: int = 0
    problems: list[str] = field(default_factory=list)


def summarize_log(records: Iterable[dict]) -> LiveSummary:
    """Fold a log (complete or mid-run) into a :class:`LiveSummary`.

    Tolerant by design — the watch CLI must render *something* for any
    prefix of a valid log — but header problems are surfaced on
    ``summary.problems`` so a corrupt log is visibly corrupt.
    """
    summary = LiveSummary()
    for record in records:
        if not isinstance(record, dict):
            continue
        summary.n_records += 1
        kind = record.get("kind")
        if kind == "header":
            if record.get("schema_version") != LOG_SCHEMA_VERSION:
                summary.problems.append(
                    f"unsupported schema_version "
                    f"{record.get('schema_version')!r}"
                )
            summary.run = record.get("run", "scenario")
            meta = record.get("meta")
            summary.meta = meta if isinstance(meta, dict) else {}
        elif kind == "heartbeat":
            shard = record.get("shard")
            if not _is_int(shard):
                continue
            view = summary.shards.setdefault(shard, ShardView(shard=shard))
            new_wall = record.get("wall_s")
            new_events = record.get("events", view.events)
            if (
                _is_num(new_wall)
                and view.n_beats
                and new_wall > view.wall_s
                and _is_int(new_events)
            ):
                view.rate = (new_events - view.events) / (new_wall - view.wall_s)
            view.clock = record.get("clock", view.clock)
            view.events = new_events
            view.relays_out = record.get("relays_out", view.relays_out)
            view.relays_in = record.get("relays_in", view.relays_in)
            view.busy_s = record.get("busy_s", view.busy_s)
            if _is_num(new_wall):
                view.wall_s = new_wall
            view.phase = record.get("phase", view.phase)
            view.n_beats += 1
        elif kind == "window":
            summary.n_windows += record.get("n_windows", 1)
            summary.n_relays += record.get("n_relays", 0)
            summary.last_barrier = record.get("barrier", summary.last_barrier)
        elif kind == "seed":
            sweep = summary.sweep or SweepView()
            summary.sweep = sweep
            sweep.total = record.get("total", sweep.total)
            sweep.done = record.get("done", sweep.done)
            if record.get("ok") is False:
                sweep.failed += 1
            if record.get("timed_out") is True:
                sweep.timed_out += 1
            attempts = record.get("attempts")
            if _is_int(attempts) and attempts > 1:
                sweep.retried += attempts - 1
            sweep.last_label = (
                f"{record.get('protocol')} degree={record.get('degree')} "
                f"seed={record.get('seed')}: "
                f"{'ok' if record.get('ok') else 'FAILED'}"
            )
        elif kind == "sweep":
            sweep = summary.sweep or SweepView()
            summary.sweep = sweep
            if record.get("phase") == "begin":
                sweep.total = record.get("total_tasks", sweep.total)
                sweep.resumed = record.get("resumed_tasks", sweep.resumed)
                sweep.workers = record.get("workers", sweep.workers)
            else:
                sweep.wall_s = record.get("wall_s", sweep.wall_s)
        elif kind == "shard-end":
            shard = record.get("shard")
            if _is_int(shard):
                summary.shard_totals[shard] = {
                    "events": record.get("events"),
                    "relays_out": record.get("relays_out"),
                    "relays_in": record.get("relays_in"),
                }
        elif kind == "violation":
            summary.violations.append(str(record.get("text")))
        elif kind == "stall":
            summary.stall = record
        elif kind == "end":
            summary.ended = True
            summary.end_ok = record.get("ok")
    return summary


def _fmt_rate(rate: Optional[float]) -> str:
    if rate is None:
        return "      --"
    if rate >= 1e6:
        return f"{rate / 1e6:6.2f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:6.1f}k"
    return f"{rate:7.0f}"


def format_live(summary: LiveSummary) -> str:
    """Render one :class:`LiveSummary` as the in-place watch view."""
    lines: list[str] = []
    meta = " ".join(
        f"{k}={v}" for k, v in sorted(summary.meta.items()) if not isinstance(v, dict)
    )
    status = "ENDED" if summary.ended else "running"
    if summary.ended and summary.end_ok is False:
        status = "ENDED (failed)"
    lines.append(f"{summary.run} run [{status}]" + (f"  {meta}" if meta else ""))
    for problem in summary.problems:
        lines.append(f"  LOG PROBLEM: {problem}")
    if summary.shards:
        lines.append(
            f"  {'shard':>5} {'sim clock':>10} {'events':>10} {'ev/s':>8} "
            f"{'relays out/in':>14} {'barrier wait':>13}"
        )
        for shard in sorted(summary.shards):
            v = summary.shards[shard]
            wait = v.barrier_wait_fraction
            wait_s = f"{wait:12.1%}" if wait is not None else "          --"
            phase = f"  [{v.phase}]" if v.phase else ""
            lines.append(
                f"  {shard:>5} {v.clock:>9.3f}s {v.events:>10} "
                f"{_fmt_rate(v.rate):>8} {v.relays_out:>6}/{v.relays_in:<6} "
                f"{wait_s}{phase}"
            )
    if summary.n_windows:
        barrier = (
            f", barrier t={summary.last_barrier:.3f}s"
            if summary.last_barrier is not None
            else ""
        )
        lines.append(
            f"  windows: {summary.n_windows} "
            f"({summary.n_relays} relays{barrier})"
        )
    if summary.sweep is not None:
        s = summary.sweep
        done = f"{s.done}/{s.total}" if s.total else str(s.done)
        extras = []
        if s.failed:
            extras.append(f"{s.failed} failed")
        if s.timed_out:
            extras.append(f"{s.timed_out} timed out")
        if s.retried:
            extras.append(f"{s.retried} retried")
        if s.resumed:
            extras.append(f"{s.resumed} resumed")
        tail = f" ({', '.join(extras)})" if extras else ""
        lines.append(f"  sweep: {done} seeds done{tail}  [{s.workers} worker(s)]")
        if s.last_label:
            lines.append(f"  last: {s.last_label}")
        if s.wall_s is not None:
            lines.append(f"  wall: {s.wall_s:.2f}s")
    if summary.stall is not None:
        st = summary.stall
        lines.append(
            f"  STALL: shard {st.get('shard')} at window t={st.get('window')}: "
            f"{st.get('reason')}"
        )
    for v in summary.violations[:5]:
        lines.append(f"  VIOLATION: {v}")
    if len(summary.violations) > 5:
        lines.append(f"  ... {len(summary.violations) - 5} more violation(s)")
    lines.append(f"  [{summary.n_records} log record(s)]")
    return "\n".join(lines)


def watch(
    path: Union[str, os.PathLike],
    once: bool = False,
    interval: float = 0.5,
    stream: Optional[TextIO] = None,
    max_seconds: Optional[float] = None,
) -> int:
    """Tail a run-event log and render the live view in place.

    Reads the file alone — no handle on the producing process — so it works
    on a run executing elsewhere.  ``once`` renders a single frame and
    returns (the CI smoke mode); otherwise the view refreshes every
    ``interval`` seconds until the log's ``end`` record appears (or
    ``max_seconds`` elapses).  Returns 0, or 1 when the log has no valid
    header.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    started = time.monotonic()
    prev_lines = 0
    while True:
        try:
            records = read_log(path)
        except OSError as exc:
            print(f"cannot read {os.fspath(path)!r}: {exc}", file=out)
            return 1
        summary = summarize_log(records)
        text = format_live(summary)
        if prev_lines:
            # Redraw in place: move up over the previous frame.
            out.write(f"\x1b[{prev_lines}F\x1b[J")
        out.write(text + "\n")
        out.flush()
        prev_lines = text.count("\n") + 1
        if not records or records[0].get("kind") != "header":
            print("not a run-event log (no header record)", file=out)
            return 1
        if once or summary.ended:
            return 0
        if max_seconds is not None and time.monotonic() - started >= max_seconds:
            return 0
        time.sleep(interval)


# --------------------------------------------------------------------------
# Perfetto shard lanes
# --------------------------------------------------------------------------


def _us(t: float) -> float:
    return round(t * 1e6, 3)


def shard_lane_events(records: Iterable[dict]) -> list[dict]:
    """Chrome trace events: one lane per shard plus a coordinator lane.

    Built purely from the run-event log, on the simulated-time axis shared
    with the packet/FIB lanes: each shard lane shows its window spans
    (previous heartbeat clock -> clock, with event/relay deltas and the
    barrier-wait fraction in ``args``) and an instant per relay-injection
    batch; the coordinator lane shows the coalesced barrier windows.  Merge
    with the node lanes via
    :func:`repro.dist.merge.shard_perfetto_trace` (or pass as ``extra=`` to
    :func:`repro.obs.flight.perfetto_trace`).
    """
    events: list[dict] = []
    lanes: set[int] = set()
    prev: dict[int, dict] = {}
    prev_barrier = 0.0
    for record in records:
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if kind == "heartbeat" and _is_int(record.get("shard")):
            shard = record["shard"]
            pid = SHARD_LANE_PID + shard
            lanes.add(shard)
            last = prev.get(shard)
            clock = record.get("clock", 0.0)
            start = last.get("clock", 0.0) if last else 0.0
            delta_events = record.get("events", 0) - (
                last.get("events", 0) if last else 0
            )
            args = {
                "events": delta_events,
                "events_total": record.get("events", 0),
                "relays_out": record.get("relays_out"),
                "relays_in": record.get("relays_in"),
            }
            busy, wall = record.get("busy_s"), record.get("wall_s")
            if _is_num(busy) and _is_num(wall) and wall > 0:
                args["barrier_wait_fraction"] = round(1.0 - busy / wall, 4)
            events.append(
                {
                    "name": "window",
                    "cat": "shard",
                    "ph": "X",
                    "ts": _us(start),
                    "dur": max(0.0, _us(clock) - _us(start)),
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
            if last is not None:
                injected = record.get("relays_in", 0) - last.get("relays_in", 0)
                if _is_int(injected) and injected > 0:
                    events.append(
                        {
                            "name": f"inject {injected} relay(s)",
                            "cat": "shard",
                            "ph": "i",
                            "ts": _us(clock),
                            "pid": pid,
                            "tid": pid,
                            "s": "t",
                            "args": {"relays": injected},
                        }
                    )
            prev[shard] = record
        elif kind == "window" and _is_num(record.get("barrier")):
            barrier = record["barrier"]
            events.append(
                {
                    "name": f"{record.get('n_windows', 1)} window(s)",
                    "cat": "coordinator",
                    "ph": "X",
                    "ts": _us(prev_barrier),
                    "dur": max(0.0, _us(barrier) - _us(prev_barrier)),
                    "pid": COORDINATOR_PID,
                    "tid": COORDINATOR_PID,
                    "args": {
                        "n_relays": record.get("n_relays"),
                        "wall_s": record.get("wall_s"),
                    },
                }
            )
            prev_barrier = barrier
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": COORDINATOR_PID,
            "tid": COORDINATOR_PID,
            "args": {"name": "coordinator"},
        }
    ] + [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": SHARD_LANE_PID + shard,
            "tid": SHARD_LANE_PID + shard,
            "args": {"name": f"shard {shard}"},
        }
        for shard in sorted(lanes)
    ]
    return metadata + events
