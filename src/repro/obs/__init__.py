"""Runtime observability: metrics registry, phase profiler, sweep telemetry.

The paper's methodology is "measure, then attribute"; this package applies
the same discipline to the simulator itself so speedups and regressions in
the engine, the protocols, and the sweep executor can be attributed to a
phase and a subsystem instead of guessed at.

Three pieces, designed to cost nothing when idle:

* :class:`MetricsRegistry` — typed counters/gauges/histograms harvested from
  the always-on integer counters (``TraceCounters``, ``EventStats``, queue
  high-water marks) plus bus-driven per-protocol traffic collectors;
* :class:`PhaseProfiler` — hierarchical wall-clock spans (setup / warmup /
  steady / failure / convergence / drain) with optional tracemalloc peaks;
* :class:`SweepTelemetry` — per-seed runtime, worker utilisation, and
  timeout/retry counts for :func:`repro.experiments.runner.run_sweep`.

``python -m repro profile`` ties them together into one schema-checked JSON
report (see :mod:`repro.obs.report` and ``docs/observability.md``).

A fourth piece, the forensic layer (:mod:`repro.obs.flight`): the
:class:`FlightRecorder` keeps bounded rings of trace records, reconstructs
per-packet autopsies and the causal convergence timeline, and snapshots
post-mortem dumps when a validation monitor fires.  ``python -m repro
trace`` is its CLI; see ``docs/tracing.md``.

A fifth, the streaming layer (:mod:`repro.obs.live`): the
:class:`RunEventLog` is an append-only JSONL run-event log (shard/sweep
heartbeats, barrier windows, per-seed lifecycle, stalls) written while a
run executes; ``python -m repro watch`` tails it from another process.
See ``docs/live.md``.
"""

from .collect import ProtocolTraffic, RunObservation
from .live import (
    LOG_SCHEMA_VERSION,
    LiveSummary,
    RunEventLog,
    check_log,
    format_live,
    open_live_log,
    read_log,
    shard_lane_events,
    summarize_log,
    watch,
    write_log,
)
from .flight import (
    CausalTimeline,
    FlightRecorder,
    PacketAutopsy,
    WaveSummary,
    build_causal_timeline,
    build_dump,
    check_dump,
    dump_records,
    format_autopsy,
    format_causal_timeline,
    load_dump,
    packet_autopsies,
    packet_autopsy,
    perfetto_trace,
    save_dump,
    write_perfetto,
)
from .profiler import NULL_PROFILER, PhaseProfiler, Span
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    REPORT_KIND,
    SCHEMA_VERSION,
    build_report,
    check_report,
    format_report,
)
from .sweeps import SeedTiming, SweepTelemetry

__all__ = [
    "CausalTimeline",
    "WaveSummary",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PacketAutopsy",
    "build_causal_timeline",
    "build_dump",
    "check_dump",
    "dump_records",
    "format_autopsy",
    "format_causal_timeline",
    "load_dump",
    "packet_autopsies",
    "packet_autopsy",
    "perfetto_trace",
    "save_dump",
    "write_perfetto",
    "PhaseProfiler",
    "Span",
    "NULL_PROFILER",
    "ProtocolTraffic",
    "RunObservation",
    "SeedTiming",
    "SweepTelemetry",
    "SCHEMA_VERSION",
    "REPORT_KIND",
    "build_report",
    "check_report",
    "format_report",
    "LOG_SCHEMA_VERSION",
    "LiveSummary",
    "RunEventLog",
    "check_log",
    "format_live",
    "open_live_log",
    "read_log",
    "shard_lane_events",
    "summarize_log",
    "watch",
    "write_log",
]
