"""Hierarchical wall-clock phase profiler.

Answers "where does the time go" for a run or a campaign: nested
context-manager spans (setup / warmup / steady / failure / convergence /
drain, and per-figure spans in a campaign) measure wall time, and — when a
:class:`~repro.sim.engine.Simulator` is attached to a span — the engine's
event count, in-``run()`` wall time, and simulated-time progress over the
span, so event *rate* can be attributed per phase.

Determinism contract: the profiler only ever reads wall clocks and engine
counters; it never touches simulated time, RNG streams, or the event queue,
so profiling a run cannot perturb its results (pinned by the golden
on/off-identical test in ``tests/obs``).

Optional memory profiling (``trace_memory=True``) snapshots ``tracemalloc``
peaks per top-level span.  It is off by default because tracemalloc slows
allocation-heavy code noticeably; wall-clock spans stay near-free.

A disabled profiler (``PhaseProfiler(enabled=False)``, or the module's
``NULL_PROFILER``) hands out one shared no-op span, so call sites can be
unconditional::

    with profiler.span("convergence", sim=sim):
        sim.run(until=end_at)
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Optional

__all__ = ["PhaseProfiler", "Span", "NULL_PROFILER"]


class Span:
    """One timed phase; may nest children."""

    __slots__ = (
        "name",
        "wall_s",
        "children",
        "events",
        "run_wall_s",
        "sim_s",
        "mem_peak_kb",
        "_started",
        "_sim",
        "_events0",
        "_run_wall0",
        "_sim_t0",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_s = 0.0
        self.children: list[Span] = []
        # Engine attribution (None unless a Simulator was attached).
        self.events: Optional[int] = None
        self.run_wall_s: Optional[float] = None
        self.sim_s: Optional[float] = None
        # tracemalloc peak over the span (None unless memory tracing was on).
        self.mem_peak_kb: Optional[float] = None
        self._started = 0.0
        self._sim = None
        self._events0 = 0
        self._run_wall0 = 0.0
        self._sim_t0 = 0.0

    @property
    def events_per_sec(self) -> float:
        """Engine events per wall second spent inside ``run()`` this span."""
        if not self.events or not self.run_wall_s:
            return 0.0
        return self.events / self.run_wall_s

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "wall_s": self.wall_s}
        if self.events is not None:
            out["events"] = self.events
            out["run_wall_s"] = self.run_wall_s
            out["sim_s"] = self.sim_s
        if self.mem_peak_kb is not None:
            out["mem_peak_kb"] = self.mem_peak_kb
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _NullSpan:
    """Shared do-nothing span for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that times one span and links it into the tree."""

    __slots__ = ("_profiler", "_span")

    def __init__(self, profiler: "PhaseProfiler", span: Span) -> None:
        self._profiler = profiler
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        profiler = self._profiler
        profiler._stack.append(span)
        if profiler.trace_memory and len(profiler._stack) == 2:
            # Top-level span (root is _stack[0]): reset the peak so each
            # phase reports its own high-water mark, not the run's.
            tracemalloc.reset_peak()
        sim = span._sim
        if sim is not None:
            span._events0 = sim.events_processed
            span._run_wall0 = sim.run_wall_time
            span._sim_t0 = sim.now
        span._started = time.perf_counter()
        return span

    def __exit__(self, *exc_info) -> None:
        span = self._span
        profiler = self._profiler
        span.wall_s += time.perf_counter() - span._started
        sim = span._sim
        if sim is not None:
            span.events = sim.events_processed - span._events0
            span.run_wall_s = sim.run_wall_time - span._run_wall0
            span.sim_s = sim.now - span._sim_t0
            span._sim = None
        if profiler.trace_memory and len(profiler._stack) == 2:
            _, peak = tracemalloc.get_traced_memory()
            span.mem_peak_kb = peak / 1024.0
        assert profiler._stack and profiler._stack[-1] is span
        profiler._stack.pop()


class PhaseProfiler:
    """Collects a tree of wall-clock spans for one run or campaign."""

    def __init__(self, enabled: bool = True, trace_memory: bool = False) -> None:
        self.enabled = enabled
        self.trace_memory = enabled and trace_memory
        self.root = Span("total")
        self._stack: list[Span] = [self.root]
        self._mem_started = False
        if self.trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._mem_started = True
        self._root_started = time.perf_counter()

    def span(self, name: str, sim=None):
        """Open a child span under the innermost open span.

        ``sim`` (a :class:`~repro.sim.engine.Simulator`) opts the span into
        engine attribution: events executed, in-run wall time, and simulated
        seconds advanced while the span was open.
        """
        if not self.enabled:
            return _NULL_SPAN
        span = Span(name)
        span._sim = sim
        self._stack[-1].children.append(span)
        return _LiveSpan(self, span)

    def finish(self) -> Span:
        """Close the root span and (if owned) stop tracemalloc."""
        if self.enabled:
            self.root.wall_s = time.perf_counter() - self._root_started
        if self._mem_started and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._mem_started = False
        return self.root

    def to_dict(self) -> dict:
        """JSON-ready span tree (root included)."""
        if self.enabled and self.root.wall_s == 0.0:
            self.root.wall_s = time.perf_counter() - self._root_started
        return self.root.to_dict()


#: Shared disabled profiler: span() returns a no-op context manager.
NULL_PROFILER = PhaseProfiler(enabled=False)
