#!/usr/bin/env python
"""CI smoke: kill a checkpointed sweep mid-flight, resume, diff vs clean.

Runs a tiny (protocol x degree x seed) grid three ways:

1. an uninterrupted checkpointed sweep, saved as ``clean.json``;
2. the same sweep SIGTERM-killed once at least two shard records exist;
3. a resume of (2) from its checkpoint, saved as ``resumed.json``.

Exits non-zero unless the kill landed mid-sweep and ``resumed.json`` is
byte-for-byte identical to ``clean.json`` — the durability contract of
``repro.experiments.store``.

Usage: python scripts/sweep_resume_smoke.py [workdir]
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time

#: Per-seed pacing so the SIGTERM deterministically lands mid-sweep.
PACE_SECONDS = "0.2"
RUNS = 6


def shard_count(path: str) -> int:
    if not os.path.exists(path):
        return 0
    with open(path) as f:
        return sum(1 for _ in f)


def main() -> int:
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="sweep-resume-smoke-"
    )
    os.makedirs(workdir, exist_ok=True)
    env = dict(os.environ, REPRO_TEST_SLEEP_SECONDS=PACE_SECONDS)
    base = [
        sys.executable, "-m", "repro", "sweep",
        "--protocols", "static", "--degrees", "4", "--runs", str(RUNS),
    ]

    print(f"[1/3] clean sweep ({RUNS} seeds) ...")
    clean = os.path.join(workdir, "clean.json")
    subprocess.run(
        [*base, "--checkpoint", os.path.join(workdir, "clean_ck"),
         "--save", clean],
        env=env, check=True,
    )

    print("[2/3] checkpointed sweep, SIGTERM mid-flight ...")
    ck = os.path.join(workdir, "ck")
    shards = os.path.join(ck, "shards.jsonl")
    proc = subprocess.Popen([*base, "--checkpoint", ck], env=env)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if shard_count(shards) >= 2:
            break
        if proc.poll() is not None:
            print("FAIL: sweep finished before it could be killed")
            return 1
        time.sleep(0.02)
    else:
        proc.kill()
        print("FAIL: no shards appeared before the kill deadline")
        return 1
    proc.send_signal(signal.SIGTERM)
    proc.wait(timeout=30)
    killed_at = shard_count(shards)
    print(f"      killed with {killed_at}/{RUNS} seeds checkpointed")
    if not 1 <= killed_at < RUNS:
        print("FAIL: kill did not land mid-sweep")
        return 1

    print("[3/3] resume from the checkpoint ...")
    resumed = os.path.join(workdir, "resumed.json")
    subprocess.run(
        [*base, "--checkpoint", ck, "--save", resumed], env=env, check=True,
    )

    with open(clean, "rb") as f:
        clean_bytes = f.read()
    with open(resumed, "rb") as f:
        resumed_bytes = f.read()
    if clean_bytes != resumed_bytes:
        print("FAIL: resumed results differ from the uninterrupted sweep")
        return 1
    print("OK: kill-and-resume is bit-identical to an uninterrupted sweep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
